package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/indoorspatial/ifls/internal/batch"
	"github.com/indoorspatial/ifls/internal/core"
	"github.com/indoorspatial/ifls/internal/faults"
	"github.com/indoorspatial/ifls/internal/geom"
	"github.com/indoorspatial/ifls/internal/indoor"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when a coalesced waiter's own request context is
// cancelled while the shared flight keeps running for the other clients.
const StatusClientClosedRequest = 499

// errUnknownVenue classifies requests naming a venue the registry does not
// hold; it maps to 404.
var errUnknownVenue = errors.New("server: unknown venue")

// ClientJSON is one query client on the wire: its identity, coordinates,
// and declared partition (validated server-side by Query.Validate).
type ClientJSON struct {
	ID        int32   `json:"id"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	Level     int     `json:"level"`
	Partition int32   `json:"partition"`
}

// QueryRequest is the POST /v1/query body: one IFLS query bound to a
// registered venue. Objective is one of minmax (the default when empty),
// baseline, mindist, maxsum, or topk; K is the result count for topk and
// ignored otherwise. TimeoutMS, when positive, shortens this request's
// server-side deadline below the configured query timeout (it can never
// extend it); past the deadline the request terminates with 504.
type QueryRequest struct {
	Venue      string       `json:"venue"`
	Objective  string       `json:"objective,omitempty"`
	K          int          `json:"k,omitempty"`
	TimeoutMS  int64        `json:"timeout_ms,omitempty"`
	Existing   []int32      `json:"existing"`
	Candidates []int32      `json:"candidates"`
	Clients    []ClientJSON `json:"clients"`
}

// StatsJSON mirrors core.Stats on the wire.
type StatsJSON struct {
	DistanceCalcs int `json:"distance_calcs"`
	Retrievals    int `json:"retrievals"`
	QueuePops     int `json:"queue_pops"`
	PrunedClients int `json:"pruned_clients"`
	RetainedBytes int `json:"retained_bytes"`
}

// RankedJSON is one entry of a topk answer.
type RankedJSON struct {
	Candidate int32   `json:"candidate"`
	Value     float64 `json:"value"`
}

// QueryResponse is the 200 body of POST /v1/query. Found reports whether
// some candidate improves on the status quo; Answer and Value are present
// only then (Value is omitted rather than encoded as NaN). Ranking is the
// topk payload. Coalesced reports whether this answer rode on another
// request's traversal instead of running its own.
type QueryResponse struct {
	Venue     string       `json:"venue"`
	Objective string       `json:"objective"`
	Found     bool         `json:"found"`
	Answer    *int32       `json:"answer,omitempty"`
	Value     *float64     `json:"value,omitempty"`
	Ranking   []RankedJSON `json:"ranking,omitempty"`
	Stats     StatsJSON    `json:"stats"`
	Coalesced bool         `json:"coalesced"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-200 response: a stable
// machine-readable code (see SERVING.md's status table) and the
// human-readable error chain.
type ErrorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// VenueInfo is one entry of the GET /v1/venues listing.
type VenueInfo struct {
	Name       string `json:"name"`
	Partitions int    `json:"partitions"`
	Doors      int    `json:"doors"`
	Levels     int    `json:"levels"`
	// Ready reports whether the venue's index is built; lazy venues warm
	// up on first query.
	Ready bool `json:"ready"`
	// Error carries a failed index build, if any.
	Error string `json:"error,omitempty"`
}

// VenuesResponse is the GET /v1/venues body.
type VenuesResponse struct {
	Venues []VenueInfo `json:"venues"`
}

// httpStatus maps a faults-taxonomy error to its HTTP status and stable
// error code. The mapping is the documented contract of SERVING.md; keep
// both in sync (TestStatusTable pins it).
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errUnknownVenue):
		return http.StatusNotFound, "unknown_venue"
	case errors.Is(err, faults.ErrInvalidQuery):
		return http.StatusBadRequest, "invalid_query"
	case errors.Is(err, faults.ErrUnknownObjective):
		return http.StatusBadRequest, "unknown_objective"
	case errors.Is(err, faults.ErrInvalidWorkload):
		return http.StatusBadRequest, "invalid_workload"
	case errors.Is(err, faults.ErrInvalidOptions):
		return http.StatusBadRequest, "invalid_options"
	case errors.Is(err, faults.ErrMalformedVenue):
		return http.StatusUnprocessableEntity, "malformed_venue"
	case errors.Is(err, faults.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, faults.ErrCorruptIndex):
		return http.StatusInternalServerError, "corrupt_index"
	case errors.Is(err, faults.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, faults.ErrCancelled):
		return StatusClientClosedRequest, "cancelled"
	case errors.Is(err, faults.ErrSolverPanic):
		return http.StatusInternalServerError, "solver_panic"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders err through the status table. During a drain,
// cancellations are reported as 503 draining (the server killed the work),
// not 499 (the client did). Shed (429) and draining (503) responses both
// carry a Retry-After header so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := httpStatus(err)
	if status == StatusClientClosedRequest && s.draining.Load() {
		status, code = http.StatusServiceUnavailable, "draining"
	}
	if status == http.StatusTooManyRequests || code == "draining" {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	if status == http.StatusGatewayTimeout && s.opts.Metrics != nil {
		s.opts.Metrics.QueryTimedOut()
	}
	writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}

// deadlineClass upgrades a cancellation whose cause is a deadline expiry to
// the deadline class: solvers report any context death as ErrCancelled, but
// when the context died because the query's own time budget ran out, the
// terminal status is 504, not 499.
func deadlineClass(err error) error {
	if err != nil && errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, faults.ErrDeadlineExceeded) {
		return faults.Deadline(err)
	}
	return err
}

// handleHealthz reports process liveness: 200 whenever the process can
// answer HTTP at all, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports admission readiness: 200 when the server accepts
// queries, 503 while draining or when a venue's index build has failed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if err := s.reg.Ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "degraded", "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleVenues lists the registered venues and their index state.
func (s *Server) handleVenues(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Code: "method_not_allowed", Error: "use GET"})
		return
	}
	resp := VenuesResponse{Venues: []VenueInfo{}}
	for _, name := range s.reg.Names() {
		e := s.reg.lookup(name)
		vs := e.venue.Stats()
		ready, err := e.state()
		info := VenueInfo{Name: name, Partitions: vs.Partitions, Doors: vs.Doors, Levels: vs.Levels, Ready: ready}
		if err != nil {
			info.Error = err.Error()
		}
		resp.Venues = append(resp.Venues, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQuery is the query endpoint: admit → validate → coalesce →
// execute → respond (see the package documentation).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Code: "method_not_allowed", Error: "use POST"})
		return
	}
	if !s.admit() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Code: "draining", Error: "server is draining"})
		return
	}
	defer s.inflight.Done()

	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{Code: "body_too_large",
				Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Code: "malformed_json", Error: err.Error()})
		return
	}

	e := s.reg.lookup(req.Venue)
	if e == nil {
		s.writeError(w, fmt.Errorf("%w: %q", errUnknownVenue, req.Venue))
		return
	}

	// Per-venue admission: shed load with a typed overload error instead
	// of queueing unboundedly.
	sem := s.venueSem(req.Venue)
	select {
	case sem <- struct{}{}:
		defer func() { <-sem }()
	default:
		s.writeError(w, fmt.Errorf("%w: venue %q at its in-flight limit (%d)",
			faults.ErrOverloaded, req.Venue, cap(sem)))
		return
	}
	if s.opts.Metrics != nil {
		s.opts.Metrics.QueryInFlight(1)
		defer s.opts.Metrics.QueryInFlight(-1)
	}

	// The request context carries the effective server-side deadline: the
	// configured QueryTimeout, shortened (never extended) by the body's
	// timeout_ms. A negative override is a malformed request.
	if req.TimeoutMS < 0 {
		s.writeError(w, fmt.Errorf("%w: negative timeout_ms %d", faults.ErrInvalidOptions, req.TimeoutMS))
		return
	}
	reqCtx := r.Context()
	if d := s.queryDeadline(req.TimeoutMS); d > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(reqCtx, d)
		defer cancel()
	}

	// Build lazy indexes under the server lifecycle context, not the
	// request's: the first client disconnecting must not abort (let alone
	// permanently poison) a build every later query depends on. The
	// BeforeBuild hook fires only while the venue is cold, so fault
	// injection tracks real build triggers.
	if hook := s.opts.Hooks.BeforeBuild; hook != nil {
		if ready, _ := e.state(); !ready {
			if err := hook(reqCtx, req.Venue); err != nil {
				s.writeError(w, deadlineClass(err))
				return
			}
		}
	}
	tree, err := e.index(s.life)
	if err != nil {
		s.writeError(w, err)
		return
	}

	bq := toBatchQuery(req)
	execute := func(ctx context.Context) batch.Result {
		if hook := s.opts.Hooks.BeforeExecute; hook != nil {
			if err := hook(ctx, req.Venue); err != nil {
				res := batch.Result{Err: err}
				if errorsIsCancel(err) {
					res.Err = faults.Cancelled(err)
				}
				return res
			}
		}
		return batch.Execute(ctx, tree, bq, s.opts.Metrics)
	}
	start := time.Now()
	var res batch.Result
	var hit bool
	if s.opts.DisableCoalescing {
		res = execute(reqCtx)
	} else {
		// The shared flight runs under the flight context the coalescer
		// derives from the server lifecycle: it outlives any single client
		// and dies on drain, flight-wide deadline, or abandonment.
		res, hit, err = s.co.do(reqCtx, queryKey(req.Venue, bq), execute)
		if s.opts.Metrics != nil && err == nil {
			if hit {
				s.opts.Metrics.CoalesceHit()
			} else {
				s.opts.Metrics.CoalesceMiss()
			}
		}
		if err != nil {
			// This caller stopped waiting (its own deadline or hang-up);
			// the flight lives on for the other participants.
			s.writeError(w, err)
			return
		}
	}
	if res.Err != nil {
		s.writeError(w, deadlineClass(res.Err))
		return
	}
	writeJSON(w, http.StatusOK, toResponse(req, res, hit, time.Since(start)))
}

// toBatchQuery converts a wire request into the batch execution form.
// Malformed content (unknown IDs, bad coordinates) is not checked here —
// Query.Validate inside batch.Execute rejects it with ErrInvalidQuery.
func toBatchQuery(req QueryRequest) batch.Query {
	q := &core.Query{
		Existing:   make([]indoor.PartitionID, len(req.Existing)),
		Candidates: make([]indoor.PartitionID, len(req.Candidates)),
		Clients:    make([]core.Client, len(req.Clients)),
	}
	for i, f := range req.Existing {
		q.Existing[i] = indoor.PartitionID(f)
	}
	for i, f := range req.Candidates {
		q.Candidates[i] = indoor.PartitionID(f)
	}
	for i, c := range req.Clients {
		q.Clients[i] = core.Client{
			ID:   c.ID,
			Loc:  geom.Pt(c.X, c.Y, c.Level),
			Part: indoor.PartitionID(c.Partition),
		}
	}
	return batch.Query{Objective: batch.Objective(req.Objective), K: req.K, Query: q}
}

// toResponse renders one successful execution for the wire, selecting the
// payload by the request's objective exactly as batch.Result populates it.
func toResponse(req QueryRequest, res batch.Result, coalesced bool, elapsed time.Duration) QueryResponse {
	resp := QueryResponse{
		Venue:     req.Venue,
		Objective: req.Objective,
		Coalesced: coalesced,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if resp.Objective == "" {
		resp.Objective = string(batch.MinMax)
	}
	setAnswer := func(found bool, answer indoor.PartitionID, value float64, st core.Stats) {
		resp.Found = found
		resp.Stats = StatsJSON{
			DistanceCalcs: st.DistanceCalcs,
			Retrievals:    st.Retrievals,
			QueuePops:     st.QueuePops,
			PrunedClients: st.PrunedClients,
			RetainedBytes: st.RetainedBytes,
		}
		if found {
			a := int32(answer)
			resp.Answer = &a
			if !math.IsNaN(value) {
				v := value
				resp.Value = &v
			}
		}
	}
	switch batch.Objective(resp.Objective) {
	case batch.MinMax, batch.Baseline:
		setAnswer(res.MinMax.Found, res.MinMax.Answer, res.MinMax.Objective, res.MinMax.Stats)
	case batch.MinDist, batch.MaxSum:
		setAnswer(res.Ext.Improves, res.Ext.Answer, res.Ext.Objective, res.Ext.Stats)
	case batch.TopK:
		resp.Found = len(res.TopK) > 0
		resp.Ranking = make([]RankedJSON, len(res.TopK))
		for i, rc := range res.TopK {
			resp.Ranking[i] = RankedJSON{Candidate: int32(rc.Candidate), Value: rc.Objective}
		}
	}
	return resp
}
