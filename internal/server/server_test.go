package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/indoorspatial/ifls/internal/core"
	"github.com/indoorspatial/ifls/internal/faults"
	"github.com/indoorspatial/ifls/internal/indoor"
	"github.com/indoorspatial/ifls/internal/obs"
	"github.com/indoorspatial/ifls/internal/testvenue"
	"github.com/indoorspatial/ifls/internal/vip"
)

// newTestServer builds a server over the Corridor3 venue (registered as
// "c3") with the given options.
func newTestServer(t testing.TB, opts Options) (*Server, *indoor.Venue) {
	t.Helper()
	v := testvenue.Corridor3()
	tree := vip.MustBuild(v, vip.DefaultOptions())
	reg := NewRegistry()
	if err := reg.Add("c3", v, tree); err != nil {
		t.Fatal(err)
	}
	return New(reg, opts), v
}

// c3Request is a valid query against Corridor3: clients in rooms 1 and 3,
// one existing facility in room 1, candidates in rooms 2 and 3.
func c3Request() QueryRequest {
	return QueryRequest{
		Venue:      "c3",
		Existing:   []int32{1},
		Candidates: []int32{2, 3},
		Clients: []ClientJSON{
			{ID: 0, X: 5, Y: 10, Level: 0, Partition: 1},
			{ID: 1, X: 25, Y: 10, Level: 0, Partition: 3},
		},
	}
}

// post sends a query request body to the handler and returns the recorder.
func post(t testing.TB, h http.Handler, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeResponse(t testing.TB, w *httptest.ResponseRecorder) QueryResponse {
	t.Helper()
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func decodeError(t testing.TB, w *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var resp ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("error response not JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

// TestQueryMatchesSession pins the serving path to the library: the HTTP
// answer must be byte-identical (answer ID, objective bits) to a direct
// Session.Solve on the same query.
func TestQueryMatchesSession(t *testing.T) {
	s, v := newTestServer(t, Options{})
	w := post(t, s.Handler(), c3Request())
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", w.Code, w.Body.String())
	}
	resp := decodeResponse(t, w)

	tree := vip.MustBuild(v, vip.DefaultOptions())
	req := c3Request()
	q := toBatchQuery(req).Query
	want := core.NewSession(tree).Solve(q)
	if !want.Found || !resp.Found {
		t.Fatalf("found = %v/%v, want both true", want.Found, resp.Found)
	}
	if *resp.Answer != int32(want.Answer) {
		t.Errorf("answer = %d, want %d", *resp.Answer, want.Answer)
	}
	if *resp.Value != want.Objective {
		t.Errorf("value = %v, want %v (bit-exact)", *resp.Value, want.Objective)
	}
	if resp.Stats.DistanceCalcs != want.Stats.DistanceCalcs || resp.Stats.QueuePops != want.Stats.QueuePops {
		t.Errorf("stats = %+v, want %+v", resp.Stats, want.Stats)
	}
}

// TestObjectives exercises every served objective through the endpoint.
func TestObjectives(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for _, obj := range []string{"", "minmax", "baseline", "mindist", "maxsum", "topk"} {
		req := c3Request()
		req.Objective = obj
		if obj == "topk" {
			req.K = 2
		}
		w := post(t, s.Handler(), req)
		if w.Code != http.StatusOK {
			t.Fatalf("objective %q: status = %d: %s", obj, w.Code, w.Body.String())
		}
		resp := decodeResponse(t, w)
		if !resp.Found {
			t.Errorf("objective %q: found = false", obj)
		}
		if obj == "topk" && len(resp.Ranking) == 0 {
			t.Errorf("topk: empty ranking")
		}
	}
}

// TestStatusTable exercises every documented non-200 status code and its
// stable error code — the SERVING.md contract.
func TestStatusTable(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxBodyBytes: 256})

	badQuery := c3Request()
	badQuery.Candidates = []int32{99} // out of range -> ErrInvalidQuery
	badObjective := c3Request()
	badObjective.Objective = "fastest"

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		code   string
	}{
		{"invalid query", http.MethodPost, "/v1/query", badQuery, http.StatusBadRequest, "invalid_query"},
		{"unknown objective", http.MethodPost, "/v1/query", badObjective, http.StatusBadRequest, "unknown_objective"},
		{"malformed json", http.MethodPost, "/v1/query", `{"venue":`, http.StatusBadRequest, "malformed_json"},
		{"unknown venue", http.MethodPost, "/v1/query", QueryRequest{Venue: "nope", Candidates: []int32{0}}, http.StatusNotFound, "unknown_venue"},
		{"method not allowed", http.MethodGet, "/v1/query", nil, http.StatusMethodNotAllowed, "method_not_allowed"},
		{"body too large", http.MethodPost, "/v1/query", `{"venue":"c3","clients":[` + strings.Repeat(`{"id":1},`, 100) + `{}]}`, http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w *httptest.ResponseRecorder
			if tc.method == http.MethodPost {
				w = post(t, s.Handler(), tc.body)
			} else {
				w = httptest.NewRecorder()
				s.Handler().ServeHTTP(w, httptest.NewRequest(tc.method, tc.path, nil))
			}
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if got := decodeError(t, w).Code; got != tc.code {
				t.Errorf("code = %q, want %q", got, tc.code)
			}
		})
	}
}

// TestHTTPStatusMapping pins every row of the faults→HTTP table in
// SERVING.md, including taxonomy errors the HTTP tests above cannot
// reach through a well-formed request.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{errUnknownVenue, http.StatusNotFound, "unknown_venue"},
		{faults.ErrInvalidQuery, http.StatusBadRequest, "invalid_query"},
		{faults.ErrUnknownObjective, http.StatusBadRequest, "unknown_objective"},
		{faults.ErrInvalidWorkload, http.StatusBadRequest, "invalid_workload"},
		{faults.ErrInvalidOptions, http.StatusBadRequest, "invalid_options"},
		{faults.ErrMalformedVenue, http.StatusUnprocessableEntity, "malformed_venue"},
		{faults.ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
		{faults.ErrCancelled, StatusClientClosedRequest, "cancelled"},
		{faults.ErrSolverPanic, http.StatusInternalServerError, "solver_panic"},
		{errors.New("anything else"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		status, code := httpStatus(fmt.Errorf("wrapped: %w", tc.err))
		if status != tc.status || code != tc.code {
			t.Errorf("httpStatus(%v) = %d %q, want %d %q", tc.err, status, code, tc.status, tc.code)
		}
	}
}

// TestLazyBuildFailure maps a failed lazy index build to its taxonomy
// status: a malformed venue surfaces as 422, and /readyz degrades.
func TestLazyBuildFailure(t *testing.T) {
	s, v := newTestServer(t, Options{})
	err := s.Registry().AddLazy("broken", v, func(context.Context) (*vip.Tree, error) {
		return nil, fmt.Errorf("%w: no partitions", faults.ErrMalformedVenue)
	})
	if err != nil {
		t.Fatal(err)
	}
	req := c3Request()
	req.Venue = "broken"
	w := post(t, s.Handler(), req)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "malformed_venue" {
		t.Errorf("code = %q, want malformed_venue", got)
	}

	// The cached failure now degrades readiness.
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after failed build = %d, want 503", rw.Code)
	}

	// A generic (non-taxonomy) build failure maps to 500 internal.
	if err := s.Registry().AddLazy("flaky", v, func(context.Context) (*vip.Tree, error) {
		return nil, errors.New("disk on fire")
	}); err != nil {
		t.Fatal(err)
	}
	req.Venue = "flaky"
	w = post(t, s.Handler(), req)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "internal" {
		t.Errorf("code = %q, want internal", got)
	}
}

// TestLazyBuildCancelledNotCached pins the recovery path: a lazy build
// aborted by cancellation (a client disconnect or a drain mid-build) is
// reported to that caller but not cached — the next query retries the
// build and succeeds, instead of inheriting a permanently failed venue.
func TestLazyBuildCancelledNotCached(t *testing.T) {
	v := testvenue.Corridor3()
	reg := NewRegistry()
	calls := 0
	if err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		calls++
		if calls == 1 {
			return nil, faults.Cancelled(context.Canceled)
		}
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	}); err != nil {
		t.Fatal(err)
	}
	e := reg.lookup("c3")
	if _, err := e.index(context.Background()); !errors.Is(err, faults.ErrCancelled) {
		t.Fatalf("first index() err = %v, want ErrCancelled", err)
	}
	if err := reg.Ready(); err != nil {
		t.Fatalf("cancelled build degraded readiness: %v", err)
	}
	tree, err := e.index(context.Background())
	if err != nil || tree == nil {
		t.Fatalf("retry index() = (%v, %v), want a built tree", tree, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (one cancelled, one retried)", calls)
	}
}

// TestLazyBuildServes proves the on-demand path: a venue registered lazily
// answers its first query by building the index then, and /v1/venues flips
// its ready flag.
func TestLazyBuildServes(t *testing.T) {
	v := testvenue.Corridor3()
	reg := NewRegistry()
	built := 0
	if err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		built++
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	}); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{})

	var vl VenuesResponse
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/venues", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &vl); err != nil {
		t.Fatal(err)
	}
	if len(vl.Venues) != 1 || vl.Venues[0].Ready {
		t.Fatalf("before first query: venues = %+v, want one not-ready entry", vl.Venues)
	}

	if w := post(t, s.Handler(), c3Request()); w.Code != http.StatusOK {
		t.Fatalf("lazy query status = %d: %s", w.Code, w.Body.String())
	}
	if built != 1 {
		t.Fatalf("build ran %d times, want 1", built)
	}
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/venues", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &vl); err != nil {
		t.Fatal(err)
	}
	if !vl.Venues[0].Ready {
		t.Errorf("after first query: ready = false, want true")
	}
}

// TestHealthAndReady pins the liveness/readiness semantics: healthz is
// always 200, readyz flips to 503 on drain while healthz stays 200.
func TestHealthAndReady(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", w.Code)
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", w.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", w.Code)
	}
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", w.Code)
	}
	if w := post(t, s.Handler(), c3Request()); w.Code != http.StatusServiceUnavailable {
		t.Errorf("query while draining = %d, want 503", w.Code)
	} else if decodeError(t, w).Code != "draining" {
		t.Errorf("drain code = %q, want draining", decodeError(t, w).Code)
	}
}

// TestOverload pins the admission limit: with MaxInFlight=1 and a held
// flight, a concurrent query on the same venue is shed with 429 and the
// overloaded error code, and a Retry-After header.
func TestOverload(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxInFlight: 1})
	hold := make(chan struct{})
	entered := make(chan struct{})
	s.co.leaderGate = func(string) {
		close(entered)
		<-hold
	}
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- post(t, s.Handler(), c3Request()) }()
	<-entered

	other := c3Request()
	other.Candidates = []int32{2} // different key: must not coalesce, must hit the limit
	w := post(t, s.Handler(), other)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "overloaded" {
		t.Errorf("code = %q, want overloaded", got)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Errorf("missing Retry-After header")
	}
	close(hold)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("held query status = %d: %s", w.Code, w.Body.String())
	}
}

// TestExpvarCatalog pins the documented metrics catalog: every expvar key
// SERVING.md names must be present in the rendered metrics object,
// including the serving additions.
func TestExpvarCatalog(t *testing.T) {
	m := obs.NewMetrics()
	s, _ := newTestServer(t, Options{Metrics: m})
	if w := post(t, s.Handler(), c3Request()); w.Code != http.StatusOK {
		t.Fatalf("query status = %d", w.Code)
	}
	var rendered map[string]any
	if err := json.Unmarshal([]byte(m.ExpvarString()), &rendered); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"queries", "errors", "cancellations", "found", "stages", "latency",
		"clients", "pruned_clients", "distance_calcs", "queue_pops",
		"prune_rate", "coalesce_hits", "coalesce_misses", "in_flight",
		"queries_timed_out", "flights_reaped",
		"page_cache_hits", "page_cache_misses", "page_cache_evictions", "pages_read",
		"continuous_ticks", "continuous_clients_resolved", "continuous_clients_reused",
		"continuous_schedule_invalidations", "continuous_answer_changes",
	} {
		if _, ok := rendered[key]; !ok {
			t.Errorf("expvar key %q missing from metrics export", key)
		}
	}
	snap := m.Snapshot()
	if snap.Queries != 1 || snap.CoalesceMisses != 1 || snap.CoalesceHits != 0 {
		t.Errorf("queries/misses/hits = %d/%d/%d, want 1/1/0", snap.Queries, snap.CoalesceMisses, snap.CoalesceHits)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after completion, want 0", snap.InFlight)
	}

	// The debug surface serves the same object over HTTP.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d, want 200", w.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["ifls"]; !ok {
		t.Errorf(`/debug/vars missing the "ifls" metrics object`)
	}
}
