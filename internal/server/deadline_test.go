package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/indoorspatial/ifls/internal/obs"
)

// TestQueryTimeout504: a query that outlives the configured server-side
// deadline terminates with 504 deadline_exceeded and increments the
// queries_timed_out counter, on both the coalesced and uncoalesced paths.
func TestQueryTimeout504(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "coalesced"
		if disable {
			name = "uncoalesced"
		}
		t.Run(name, func(t *testing.T) {
			m := obs.NewMetrics()
			s, _ := newTestServer(t, Options{
				Metrics:           m,
				QueryTimeout:      20 * time.Millisecond,
				DisableCoalescing: disable,
				Hooks: Hooks{BeforeExecute: func(ctx context.Context, _ string) error {
					<-ctx.Done() // a traversal that never converges in budget
					return ctx.Err()
				}},
			})
			w := post(t, s.Handler(), c3Request())
			if w.Code != http.StatusGatewayTimeout {
				t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
			}
			if got := decodeError(t, w).Code; got != "deadline_exceeded" {
				t.Errorf("code = %q, want deadline_exceeded", got)
			}
			if snap := m.Snapshot(); snap.QueriesTimedOut != 1 {
				t.Errorf("queries_timed_out = %d, want 1", snap.QueriesTimedOut)
			}
		})
	}
}

// TestTimeoutOverrideClamp pins queryDeadline's clamping: timeout_ms can
// shorten the server-side budget but never extend it, and zero means "use
// the server's".
func TestTimeoutOverrideClamp(t *testing.T) {
	s, _ := newTestServer(t, Options{QueryTimeout: time.Second})
	if d := s.queryDeadline(0); d != time.Second {
		t.Errorf("no override: deadline = %v, want 1s", d)
	}
	if d := s.queryDeadline(50); d != 50*time.Millisecond {
		t.Errorf("shorter override: deadline = %v, want 50ms", d)
	}
	if d := s.queryDeadline(5000); d != time.Second {
		t.Errorf("longer override must clamp to the server timeout, got %v", d)
	}
	unbounded, _ := newTestServer(t, Options{})
	if d := unbounded.queryDeadline(0); d != 0 {
		t.Errorf("no timeout anywhere: deadline = %v, want 0 (unbounded)", d)
	}
	if d := unbounded.queryDeadline(75); d != 75*time.Millisecond {
		t.Errorf("override without a server timeout: deadline = %v, want 75ms", d)
	}
}

// TestNegativeTimeoutRejected: a negative timeout_ms is a malformed
// request, rejected up front with 400 invalid_options.
func TestNegativeTimeoutRejected(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	req := c3Request()
	req.TimeoutMS = -5
	w := post(t, s.Handler(), req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "invalid_options" {
		t.Errorf("code = %q, want invalid_options", got)
	}
}

// TestRequestTimeoutMS: the per-request override enforces a deadline even
// when the server has no QueryTimeout configured.
func TestRequestTimeoutMS(t *testing.T) {
	m := obs.NewMetrics()
	s, _ := newTestServer(t, Options{
		Metrics: m,
		Hooks: Hooks{BeforeExecute: func(ctx context.Context, _ string) error {
			<-ctx.Done()
			return ctx.Err()
		}},
	})
	req := c3Request()
	req.TimeoutMS = 20
	w := post(t, s.Handler(), req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
	}
	if snap := m.Snapshot(); snap.QueriesTimedOut != 1 {
		t.Errorf("queries_timed_out = %d, want 1", snap.QueriesTimedOut)
	}
}

// TestFlightCarriesMaxDeadline: a coalesced flight runs until the MAX
// deadline across its participants. A leader with a short budget joined by
// an unbounded waiter keeps running past the leader's deadline and delivers
// the complete answer to everyone.
func TestFlightCarriesMaxDeadline(t *testing.T) {
	s, _ := newTestServer(t, Options{
		AbandonGrace: -1, // isolate deadline behavior from reaping
		Hooks: Hooks{BeforeExecute: func(ctx context.Context, _ string) error {
			// Three leader-deadlines of work: if the flight still carried the
			// leader's 100ms budget, this would be cut short.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(300 * time.Millisecond):
				return nil
			}
		}},
	})
	key := queryKey("c3", toBatchQuery(c3Request()))
	var gateOnce sync.Once
	registered := make(chan struct{})
	release := make(chan struct{})
	s.co.leaderGate = func(string) {
		gateOnce.Do(func() { close(registered) })
		<-release
	}

	// The bounded request must own the flight, so start it alone and wait
	// for its flight to register before the unbounded waiter arrives.
	leaderReq := c3Request()
	leaderReq.TimeoutMS = 100
	leaderDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderDone <- post(t, s.Handler(), leaderReq) }()
	<-registered

	waiterDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { waiterDone <- post(t, s.Handler(), c3Request()) }()
	for s.co.waiters(key) < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	// The unbounded waiter lifted the flight deadline, so both clients get
	// the full answer — including the leader, whose own budget expired while
	// the shared work ran.
	for name, ch := range map[string]chan *httptest.ResponseRecorder{"leader": leaderDone, "waiter": waiterDone} {
		w := <-ch
		if w.Code != http.StatusOK {
			t.Fatalf("%s status = %d, want 200: %s", name, w.Code, w.Body.String())
		}
		if resp := decodeResponse(t, w); !resp.Found {
			t.Errorf("%s got found=false, want a complete answer", name)
		}
	}
}

// TestAbandonedFlightReaped: when every participant of a flight hangs up,
// the flight is cancelled after the grace period instead of running to
// completion, and the reap is counted.
func TestAbandonedFlightReaped(t *testing.T) {
	m := obs.NewMetrics()
	entered := make(chan struct{})
	s, _ := newTestServer(t, Options{
		Metrics:      m,
		AbandonGrace: 5 * time.Millisecond,
		Hooks: Hooks{BeforeExecute: func(ctx context.Context, _ string) error {
			close(entered)
			<-ctx.Done() // run until the reaper cancels the flight
			return ctx.Err()
		}},
	})

	ctx, cancel := context.WithCancel(context.Background())
	body, err := json.Marshal(c3Request())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)).WithContext(ctx)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		done <- w
	}()

	<-entered // the flight is executing; now its only participant departs
	cancel()
	w := <-done
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	if snap := m.Snapshot(); snap.FlightsReaped != 1 {
		t.Errorf("flights_reaped = %d, want 1", snap.FlightsReaped)
	}
}

// TestRejoinDisarmsReap: a retry that lands on an abandoned flight inside
// the grace window adopts it — the reap timer is disarmed and the retry
// gets the complete answer off the rescued flight.
func TestRejoinDisarmsReap(t *testing.T) {
	m := obs.NewMetrics()
	var enterOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	s, _ := newTestServer(t, Options{
		Metrics:      m,
		AbandonGrace: time.Hour, // the reap must be disarmed, not merely slow
		Hooks: Hooks{BeforeExecute: func(ctx context.Context, _ string) error {
			enterOnce.Do(func() { close(entered) })
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-release:
				return nil
			}
		}},
	})
	key := queryKey("c3", toBatchQuery(c3Request()))

	ctx, cancel := context.WithCancel(context.Background())
	body, err := json.Marshal(c3Request())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)).WithContext(ctx)
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		firstDone <- w
	}()
	<-entered

	// The leader goroutine is executing the flight; grab the flight, hang up
	// the only participant, and wait until the grace timer is armed.
	s.co.mu.Lock()
	fl := s.co.flights[key]
	s.co.mu.Unlock()
	if fl == nil {
		t.Fatal("flight not registered")
	}
	cancel()
	for {
		fl.mu.Lock()
		armed := fl.reapT != nil
		fl.mu.Unlock()
		if armed {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The retry joins the abandoned flight inside the grace window.
	retryDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { retryDone <- post(t, s.Handler(), c3Request()) }()
	for s.co.waiters(key) < 1 {
		time.Sleep(time.Millisecond)
	}
	fl.mu.Lock()
	stillArmed := fl.reapT != nil
	fl.mu.Unlock()
	if stillArmed {
		t.Error("reap timer still armed after a participant rejoined")
	}
	close(release)
	w := <-retryDone
	if w.Code != http.StatusOK {
		t.Fatalf("retry status = %d, want 200: %s", w.Code, w.Body.String())
	}
	if resp := decodeResponse(t, w); !resp.Coalesced {
		t.Errorf("retry did not coalesce onto the abandoned flight")
	}
	// The leader delivers the rescued answer too, albeit to a dead
	// connection.
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Errorf("leader status = %d, want 200 (flight rescued)", w.Code)
	}
	if snap := m.Snapshot(); snap.FlightsReaped != 0 {
		t.Errorf("flights_reaped = %d, want 0 (the rejoin disarmed the reap)", snap.FlightsReaped)
	}
}

// TestDrainingRetryAfter: 503 draining responses carry Retry-After, and the
// value honors Options.RetryAfterSeconds.
func TestDrainingRetryAfter(t *testing.T) {
	s, _ := newTestServer(t, Options{RetryAfterSeconds: 7})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := post(t, s.Handler(), c3Request())
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
}
