package server

import (
	"context"
	"encoding/binary"
	"math"
	"sync"

	"github.com/indoorspatial/ifls/internal/batch"
	"github.com/indoorspatial/ifls/internal/faults"
)

// queryKey renders a query's full fingerprint — venue, objective, K, Fe,
// Fn, and every client's identity and coordinates — as a canonical byte
// string. Two requests coalesce if and only if their keys are equal, so
// the key must determine the answer completely: it is the exact query, not
// a hash of it, and collisions are impossible by construction. Every
// variable-length field is length-prefixed so no byte value inside a field
// (venue names are operator-controlled, not trusted) can shift the
// boundary between fields.
func queryKey(venue string, q batch.Query) string {
	b := make([]byte, 0, 64+len(venue)+4*(len(q.Query.Existing)+len(q.Query.Candidates))+24*len(q.Query.Clients))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(venue)))
	b = append(b, venue...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Objective)))
	b = append(b, q.Objective...)
	b = binary.LittleEndian.AppendUint32(b, uint32(q.K))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Existing)))
	for _, f := range q.Query.Existing {
		b = binary.LittleEndian.AppendUint32(b, uint32(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Candidates)))
	for _, f := range q.Query.Candidates {
		b = binary.LittleEndian.AppendUint32(b, uint32(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Clients)))
	for _, c := range q.Query.Clients {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Part))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Loc.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Loc.Y))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Loc.Level))
	}
	return string(b)
}

// flight is one shared execution: the leader stores the result and closes
// done; waiters read res only after done is closed. The result (including
// its TopK slice) is shared read-only across all callers.
type flight struct {
	done chan struct{}
	res  batch.Result
}

// coalescer deduplicates concurrent identical work: at most one flight per
// key runs at a time, and callers arriving while it runs share its result.
// Consecutive (non-overlapping) identical queries do not coalesce — each
// starts a fresh flight, so answers always reflect a traversal that started
// after the request arrived. Safe for concurrent use.
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*flight
	waiting map[string]int // waiters currently blocked per key, for tests and overload visibility

	// leaderGate, when non-nil, runs on the leader's goroutine after its
	// flight is registered and before the work executes. Tests use it to
	// hold a flight open while waiters pile on, making coalescing
	// assertions deterministic.
	leaderGate func(key string)
}

func newCoalescer() *coalescer {
	return &coalescer{flights: map[string]*flight{}, waiting: map[string]int{}}
}

// do executes run for key, sharing one execution among all concurrent
// callers with an equal key. Exactly one caller — the leader — runs run;
// the others wait for its result. hit reports whether this caller joined
// an existing flight. A waiter whose ctx expires stops waiting and returns
// a faults.ErrCancelled error, but the flight itself keeps running: run is
// invoked on the leader's goroutine under whatever context the caller
// closed over (the server uses its lifecycle context), so one client's
// cancellation never aborts work other clients share.
func (c *coalescer) do(ctx context.Context, key string, run func() batch.Result) (res batch.Result, hit bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.waiting[key]++
		c.mu.Unlock()
		defer func() {
			c.mu.Lock()
			c.waiting[key]--
			c.mu.Unlock()
		}()
		select {
		case <-f.done:
			return f.res, true, nil
		case <-ctx.Done():
			return batch.Result{}, true, faults.Cancelled(ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	if c.leaderGate != nil {
		c.leaderGate(key)
	}
	f.res = run()

	// Unregister before signalling completion: a caller that arrives after
	// close(done) must start a fresh flight, never read a stale one.
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.res, false, nil
}

// waiters reports how many callers are currently blocked on key's flight.
func (c *coalescer) waiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting[key]
}
