package server

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"

	"github.com/indoorspatial/ifls/internal/batch"
	"github.com/indoorspatial/ifls/internal/faults"
)

// queryKey renders a query's full fingerprint — venue, objective, K, Fe,
// Fn, and every client's identity and coordinates — as a canonical byte
// string. Two requests coalesce if and only if their keys are equal, so
// the key must determine the answer completely: it is the exact query, not
// a hash of it, and collisions are impossible by construction. Every
// variable-length field is length-prefixed so no byte value inside a field
// (venue names are operator-controlled, not trusted) can shift the
// boundary between fields.
func queryKey(venue string, q batch.Query) string {
	b := make([]byte, 0, 64+len(venue)+4*(len(q.Query.Existing)+len(q.Query.Candidates))+24*len(q.Query.Clients))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(venue)))
	b = append(b, venue...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Objective)))
	b = append(b, q.Objective...)
	b = binary.LittleEndian.AppendUint32(b, uint32(q.K))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Existing)))
	for _, f := range q.Query.Existing {
		b = binary.LittleEndian.AppendUint32(b, uint32(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Candidates)))
	for _, f := range q.Query.Candidates {
		b = binary.LittleEndian.AppendUint32(b, uint32(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(q.Query.Clients)))
	for _, c := range q.Query.Clients {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Part))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Loc.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Loc.Y))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Loc.Level))
	}
	return string(b)
}

// flight is one shared execution: the leader stores the result and closes
// done; waiters read res only after done is closed. The result (including
// its TopK slice) is shared read-only across all callers.
//
// Beyond the result, a flight owns two pieces of lifecycle state, both
// guarded by mu:
//
//   - A deadline. The flight runs under ctx (derived from the server's
//     lifecycle context) and carries the MAX deadline across all its
//     participants — joining with a later deadline extends the flight's
//     timer, joining with no deadline removes it. When the timer fires the
//     flight is cancelled and its result classified as
//     faults.ErrDeadlineExceeded, because every participant's budget had
//     expired.
//
//   - A participant count for abandoned-flight reaping. Every caller
//     (leader included) registers its request context; when the last live
//     participant departs, a grace timer starts, and if nobody joins
//     before it fires the flight is cancelled — shared work nobody is
//     waiting for is released instead of running to completion.
type flight struct {
	done chan struct{}
	res  batch.Result

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	refs     int       // participants whose request contexts are still live
	deadline time.Time // max deadline across participants; zero = none
	hasDL    bool      // whether deadline is armed
	dlTimer  *time.Timer
	reapT    *time.Timer
	timedOut bool // the deadline timer cancelled ctx
	reaped   bool // the reap timer cancelled ctx
	finished bool // run returned; timers are inert past this point
}

// coalescer deduplicates concurrent identical work: at most one flight per
// key runs at a time, and callers arriving while it runs share its result.
// Consecutive (non-overlapping) identical queries do not coalesce — each
// starts a fresh flight, so answers always reflect a traversal that started
// after the request arrived. Safe for concurrent use.
type coalescer struct {
	// life is the context flights derive theirs from: it outlives any
	// single request and dies on server drain.
	life context.Context
	// grace is how long an abandoned flight (zero live participants) keeps
	// running before it is reaped. Negative disables reaping.
	grace time.Duration
	// onReap, when non-nil, is called once per reaped flight (the
	// flights_reaped counter hook).
	onReap func()

	mu      sync.Mutex
	flights map[string]*flight
	waiting map[string]int // waiters currently blocked per key, for tests and overload visibility

	// leaderGate, when non-nil, runs on the leader's goroutine after its
	// flight is registered and before the work executes. Tests use it to
	// hold a flight open while waiters pile on, making coalescing
	// assertions deterministic.
	leaderGate func(key string)
}

func newCoalescer(life context.Context, grace time.Duration, onReap func()) *coalescer {
	return &coalescer{
		life:    life,
		grace:   grace,
		onReap:  onReap,
		flights: map[string]*flight{},
		waiting: map[string]int{},
	}
}

// newFlight builds a flight running under a cancellable child of life,
// with the leader's deadline (taken from its request context) as the
// initial flight deadline.
func (c *coalescer) newFlight(leaderCtx context.Context) *flight {
	ctx, cancel := context.WithCancel(c.life)
	f := &flight{done: make(chan struct{}), ctx: ctx, cancel: cancel}
	if dl, ok := leaderCtx.Deadline(); ok {
		f.deadline, f.hasDL = dl, true
		f.dlTimer = time.AfterFunc(time.Until(dl), f.deadlineFired)
	}
	return f
}

// deadlineFired runs when the flight's deadline timer expires: every
// participant's budget has passed, so the shared work is cancelled and the
// result will classify as ErrDeadlineExceeded.
func (f *flight) deadlineFired() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.finished {
		return
	}
	f.timedOut = true
	f.cancel()
}

// join registers one more live participant, extending the flight deadline
// to the participant's (a participant without a deadline removes the
// flight's — the flight carries the max) and disarming any pending reap.
func (f *flight) join(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refs++
	if f.reapT != nil {
		f.reapT.Stop()
		f.reapT = nil
	}
	if !f.hasDL {
		return
	}
	dl, ok := ctx.Deadline()
	if !ok {
		// An unbounded participant: the max deadline is now "never".
		f.hasDL = false
		f.dlTimer.Stop()
		return
	}
	if dl.After(f.deadline) {
		f.deadline = dl
		f.dlTimer.Reset(time.Until(dl))
	}
}

// leave unregisters a departed participant. When the last one leaves, the
// reap grace timer starts; if it fires before anyone joins, the flight is
// cancelled and counted as reaped.
func (f *flight) leave(grace time.Duration, onReap func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refs--
	if f.refs > 0 || f.finished || grace < 0 {
		return
	}
	f.reapT = time.AfterFunc(grace, func() {
		f.mu.Lock()
		if f.finished || f.refs > 0 {
			f.mu.Unlock()
			return
		}
		f.reaped = true
		f.cancel()
		f.mu.Unlock()
		if onReap != nil {
			onReap()
		}
	})
}

// finish marks the run complete and disarms both timers; it reports
// whether the deadline fired, so the leader can classify the result.
func (f *flight) finish() (timedOut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.finished = true
	if f.dlTimer != nil {
		f.dlTimer.Stop()
	}
	if f.reapT != nil {
		f.reapT.Stop()
		f.reapT = nil
	}
	return f.timedOut
}

// do executes run for key, sharing one execution among all concurrent
// callers with an equal key. Exactly one caller — the leader — runs run;
// the others wait for its result. hit reports whether this caller joined
// an existing flight.
//
// run receives the flight's context: a child of the server lifecycle
// context that is additionally cancelled when the flight's deadline (the
// max across participants' request deadlines) fires, or when the flight is
// abandoned — every participant's request context dead for longer than the
// reap grace. A waiter whose own ctx expires stops waiting and returns a
// faults error (ErrDeadlineExceeded for a deadline, ErrCancelled for a
// hang-up), but its departure alone never aborts the flight: the work dies
// only on drain, flight-wide deadline, or abandonment.
func (c *coalescer) do(ctx context.Context, key string, run func(context.Context) batch.Result) (res batch.Result, hit bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		f.join(ctx)
		c.waiting[key]++
		c.mu.Unlock()
		defer func() {
			c.mu.Lock()
			c.waiting[key]--
			c.mu.Unlock()
		}()
		select {
		case <-f.done:
			// A participant that outlived its own deadline still delivers
			// the flight's complete answer; clamping happens while waiting.
			return f.res, true, nil
		case <-ctx.Done():
			f.leave(c.grace, c.onReap)
			if ctx.Err() == context.DeadlineExceeded {
				return batch.Result{}, true, faults.Deadline(ctx.Err())
			}
			return batch.Result{}, true, faults.Cancelled(ctx.Err())
		}
	}
	f := c.newFlight(ctx)
	f.refs = 1
	c.flights[key] = f
	c.mu.Unlock()

	// The leader's goroutine is busy executing the flight, so a watcher
	// tracks its request context for the participant count. It exits with
	// the flight: no goroutine outlives the work it watches.
	leaderGone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			f.leave(c.grace, c.onReap)
		case <-leaderGone:
		}
	}()

	if c.leaderGate != nil {
		c.leaderGate(key)
	}
	f.res = run(f.ctx)
	if f.finish() && f.res.Err != nil && errorsIsCancel(f.res.Err) {
		// The flight deadline fired and the solver stopped for it: the
		// terminal class is the deadline, not a generic cancellation.
		f.res.Err = faults.Deadline(f.res.Err)
	}
	close(leaderGone)

	// Unregister before signalling completion: a caller that arrives after
	// close(done) must start a fresh flight, never read a stale one.
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.res, false, nil
}

// errorsIsCancel reports whether err is a cancellation-class error (the
// shape a solver returns when its context dies mid-traversal).
func errorsIsCancel(err error) bool {
	return errors.Is(err, faults.ErrCancelled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// waiters reports how many callers are currently blocked on key's flight.
func (c *coalescer) waiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting[key]
}
