// Package server is the HTTP serving layer: a long-running multi-venue IFLS
// query service over the existing engine stack (core.Exec via
// internal/batch, typed errors via internal/faults, metrics via
// internal/obs). The root ifls package wraps it as ifls.NewServer and
// cmd/iflsd runs it as a daemon; SERVING.md is the operator-facing
// reference for everything this package exposes.
//
// # Request lifecycle
//
// Every query request passes through five stages, in order:
//
//	admit    → draining check, per-venue in-flight limit (faults.ErrOverloaded)
//	validate → JSON decode, venue lookup, then Query.Validate inside the engine
//	coalesce → identical in-flight queries share one execution (singleflight)
//	execute  → batch.Execute: pooled Scratch, one core.Exec, span trace
//	respond  → faults taxonomy mapped to an HTTP status, JSON body
//
// # Coalescing
//
// The scaling lever for many concurrent clients is request coalescing: all
// concurrent queries with the same fingerprint — venue, objective, K, Fe,
// Fn, and client set, compared byte-exactly, never by hash alone — share a
// single bottom-up traversal. The first such query (the leader) executes;
// the rest (waiters) block until the leader finishes and then fan the one
// result out. The shared flight runs under the server's lifecycle context,
// not any single request's, so a waiter cancelling — or the leader's own
// client disconnecting — never aborts work other clients are waiting on.
// A flight dies in exactly three ways: the server drains, the flight's
// deadline (the max across its participants' budgets) fires, or every
// participant departs and the abandon-grace timer reaps the flight before
// a retry adopts it.
//
// # Deadlines and reaping
//
// Options.QueryTimeout bounds every query's wall time; a request may
// shorten (never extend) its own budget with the timeout_ms body field.
// Past the deadline the request terminates with 504 deadline_exceeded
// (faults.ErrDeadlineExceeded) and the traversal is cancelled at its next
// checkpoint. Coalesced flights carry the maximum deadline of their
// participants, extended as later-deadlined requests join. When the last
// participant leaves a flight, a grace timer (Options.AbandonGrace,
// default 100ms) starts; unless a retry joins first, the flight is
// cancelled and Metrics counts it under flights_reaped. Hooks
// (BeforeExecute, BeforeBuild) are seams for fault injection — see
// internal/chaos.
//
// # Shutdown
//
// Server.Shutdown drains: readiness flips to 503 and new queries are
// refused immediately, in-flight queries (including shared flights) run to
// completion and return complete answers, and only after the drain (or its
// deadline) does the lifecycle context cancel whatever is left. Pair it
// with http.Server.Shutdown, which performs the matching connection-level
// drain; cmd/iflsd wires both to SIGINT/SIGTERM.
//
// # Concurrency
//
// A Server and its Registry are safe for concurrent use. All per-query
// mutable state is leased per request (batch.Execute's pooled Scratch);
// the coalescer's flight map is the only shared mutable structure on the
// query path and is guarded by one mutex taken only at flight start and
// end, never during a traversal.
package server
