package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/indoorspatial/ifls/internal/batch"
	"github.com/indoorspatial/ifls/internal/core"
	"github.com/indoorspatial/ifls/internal/faults"
	"github.com/indoorspatial/ifls/internal/obs"
	"github.com/indoorspatial/ifls/internal/vip"
)

// TestCoalescedMatchesSession is the headline correctness property: K
// concurrent identical queries — forced onto one shared flight — all
// return results byte-identical to an uncoalesced Session.Solve, with
// exactly one traversal executed and K-1 coalesce hits recorded. Run
// under -race, this also proves the fan-out shares the result safely.
func TestCoalescedMatchesSession(t *testing.T) {
	const K = 8
	m := obs.NewMetrics()
	s, v := newTestServer(t, Options{Metrics: m})

	// Hold the leader's flight open until all K-1 waiters have joined, so
	// coalescing is deterministic rather than a race the test hopes to win.
	key := queryKey("c3", toBatchQuery(c3Request()))
	release := make(chan struct{})
	s.co.leaderGate = func(string) { <-release }
	go func() {
		for s.co.waiters(key) < K-1 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()

	var wg sync.WaitGroup
	responses := make([]QueryResponse, K)
	codes := make([]int, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s.Handler(), c3Request())
			codes[i] = w.Code
			if w.Code == http.StatusOK {
				responses[i] = decodeResponse(t, w)
			}
		}(i)
	}
	wg.Wait()

	tree := vip.MustBuild(v, vip.DefaultOptions())
	want := core.NewSession(tree).Solve(toBatchQuery(c3Request()).Query)
	leaders := 0
	for i := 0; i < K; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		r := responses[i]
		if !r.Found || *r.Answer != int32(want.Answer) ||
			math.Float64bits(*r.Value) != math.Float64bits(want.Objective) {
			t.Errorf("request %d: (%v, %v, %v) != session (%v, %v, %v)",
				i, r.Found, *r.Answer, *r.Value, want.Found, want.Answer, want.Objective)
		}
		if !r.Coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}

	snap := m.Snapshot()
	if snap.CoalesceHits != K-1 || snap.CoalesceMisses != 1 {
		t.Errorf("coalesce hits/misses = %d/%d, want %d/1", snap.CoalesceHits, snap.CoalesceMisses, K-1)
	}
	// One traversal's worth of work: the solver observation ran once, so
	// the work counters equal a single solo run's, not K times it.
	if snap.Queries != 1 {
		t.Errorf("observed solver queries = %d, want 1 (shared flight)", snap.Queries)
	}
	if snap.QueuePops != int64(want.Stats.QueuePops) || snap.DistanceCalcs != int64(want.Stats.DistanceCalcs) {
		t.Errorf("work counters = %d pops / %d calcs, want one traversal's %d/%d",
			snap.QueuePops, snap.DistanceCalcs, want.Stats.QueuePops, want.Stats.DistanceCalcs)
	}
}

// TestNearIdenticalDoNotCoalesce: queries differing in any fingerprint
// component (a client coordinate here) must run their own flights and
// still each match their own uncoalesced answer.
func TestNearIdenticalDoNotCoalesce(t *testing.T) {
	m := obs.NewMetrics()
	s, v := newTestServer(t, Options{Metrics: m})

	reqA := c3Request()
	reqB := c3Request()
	reqB.Clients[1].X = 24.5 // near-identical: one coordinate differs

	if ka, kb := queryKey("c3", toBatchQuery(reqA)), queryKey("c3", toBatchQuery(reqB)); ka == kb {
		t.Fatal("near-identical queries produced an equal fingerprint")
	}

	tree := vip.MustBuild(v, vip.DefaultOptions())
	session := core.NewSession(tree)
	for _, req := range []QueryRequest{reqA, reqB} {
		w := post(t, s.Handler(), req)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		resp := decodeResponse(t, w)
		want := session.Solve(toBatchQuery(req).Query)
		if !resp.Found || *resp.Answer != int32(want.Answer) ||
			math.Float64bits(*resp.Value) != math.Float64bits(want.Objective) {
			t.Errorf("req %+v: got (%v,%v), want (%v,%v)", req.Clients[1], *resp.Answer, *resp.Value, want.Answer, want.Objective)
		}
		if resp.Coalesced {
			t.Errorf("near-identical query coalesced; fingerprints must differ")
		}
	}
	if snap := m.Snapshot(); snap.CoalesceHits != 0 || snap.CoalesceMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 0/2", snap.CoalesceHits, snap.CoalesceMisses)
	}
}

// TestWaiterCancelDoesNotCancelFlight: a coalesced waiter whose request
// context dies gets a cancellation response, while the shared flight runs
// to completion and serves the surviving clients a full answer.
func TestWaiterCancelDoesNotCancelFlight(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	key := queryKey("c3", toBatchQuery(c3Request()))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.co.leaderGate = func(string) {
		close(entered)
		<-release
	}

	// Start the leader alone and wait for it to hold the flight open, so the
	// clients below are guaranteed to join as waiters.
	leaderDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderDone <- post(t, s.Handler(), c3Request()) }()
	<-entered
	survivorDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { survivorDone <- post(t, s.Handler(), c3Request()) }()

	// A third client joins the same flight, then hangs up.
	ctx, cancel := context.WithCancel(context.Background())
	body, err := json.Marshal(c3Request())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)).WithContext(ctx)
	canceledDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		canceledDone <- w
	}()

	for s.co.waiters(key) < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	w := <-canceledDone
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled waiter status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "cancelled" {
		t.Errorf("cancelled waiter code = %q, want cancelled", got)
	}

	close(release)
	for _, ch := range []chan *httptest.ResponseRecorder{leaderDone, survivorDone} {
		w := <-ch
		if w.Code != http.StatusOK {
			t.Fatalf("surviving client status = %d: %s", w.Code, w.Body.String())
		}
		if resp := decodeResponse(t, w); !resp.Found {
			t.Errorf("surviving client got found=false, want a complete answer")
		}
	}
}

// TestDrainCompletesInflight: Shutdown called mid-flight refuses new
// queries immediately but lets the running flight finish and deliver a
// complete answer, and Shutdown returns only after it has.
func TestDrainCompletesInflight(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	release := make(chan struct{})
	entered := make(chan struct{})
	s.co.leaderGate = func(string) {
		close(entered)
		<-release
	}
	inflightDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { inflightDone <- post(t, s.Handler(), c3Request()) }()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	// New work is already refused while the old flight runs.
	if w := post(t, s.Handler(), c3Request()); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", w.Code)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before in-flight query finished", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	w := <-inflightDone
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight query during drain = %d, want 200: %s", w.Code, w.Body.String())
	}
	if resp := decodeResponse(t, w); !resp.Found {
		t.Errorf("drained query returned found=false, want the complete answer")
	}
}

// TestDrainDeadlineCancelsFlights: when the drain context expires first,
// Shutdown reports it and the stuck flight is cancelled (503 draining for
// its clients) rather than leaked.
func TestDrainDeadlineCancelsFlights(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	// Block the flight before execution, so once released it runs under the
	// already-cancelled lifecycle context and reports cancellation.
	entered := make(chan struct{})
	release := make(chan struct{})
	s.co.leaderGate = func(string) {
		close(entered)
		<-release
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(t, s.Handler(), c3Request()) }()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	close(release)
	w := <-done
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned query = %d, want 503: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "draining" {
		t.Errorf("code = %q, want draining", got)
	}
}

// TestCoalescerSequentialFlights: non-overlapping identical queries do not
// share results — each runs its own flight.
func TestCoalescerSequentialFlights(t *testing.T) {
	c := newCoalescer(context.Background(), -1, nil)
	runs := 0
	run := func(context.Context) batch.Result {
		runs++
		return batch.Result{}
	}
	for i := 0; i < 3; i++ {
		if _, hit, err := c.do(context.Background(), "k", run); err != nil || hit {
			t.Fatalf("do #%d: hit=%v err=%v, want fresh flight", i, hit, err)
		}
	}
	if runs != 3 {
		t.Errorf("runs = %d, want 3 (sequential queries never coalesce)", runs)
	}
}

// TestCoalescerWaiterError pins the waiter-cancellation error class.
func TestCoalescerWaiterError(t *testing.T) {
	c := newCoalescer(context.Background(), -1, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	c.leaderGate = func(string) {
		close(started)
		<-release
	}
	go c.do(context.Background(), "k", func(context.Context) batch.Result { return batch.Result{} })
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, hit, err := c.do(ctx, "k", func(context.Context) batch.Result {
		t.Error("waiter executed the flight body")
		return batch.Result{}
	})
	if !hit || !errors.Is(err, faults.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Errorf("hit=%v err=%v, want coalesced ErrCancelled wrapping context.Canceled", hit, err)
	}
	close(release)
}
