package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/indoorspatial/ifls/internal/testvenue"
	"github.com/indoorspatial/ifls/internal/vip"
)

// TestReadyzNotBlockedByLazyBuild is the regression test for the readiness
// head-of-line bug: entry.index used to hold the entry lock for the whole
// lazy build, so a first query against a large venue froze state() and with
// it /readyz for the build's full duration — minutes, against a probe
// timeout of seconds. Builds now run outside the lock; /readyz must answer
// well inside 100ms while a build is demonstrably in flight.
func TestReadyzNotBlockedByLazyBuild(t *testing.T) {
	v := testvenue.Corridor3()
	reg := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	if err := reg.AddLazy("slow", v, func(ctx context.Context) (*vip.Tree, error) {
		close(started)
		<-release
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	}); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{})

	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		req := c3Request()
		req.Venue = "slow"
		post(t, s.Handler(), req)
	}()
	<-started // the build is now in flight and unfinished

	begin := time.Now()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	elapsed := time.Since(begin)
	close(release)
	<-queryDone

	if w.Code != http.StatusOK {
		t.Errorf("readyz mid-build = %d, want 200 (an unfinished lazy build is not a failure)", w.Code)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("readyz took %v mid-build, want < 100ms (blocked behind the lazy build)", elapsed)
	}
}

// TestLazyBuildSingleFlight: concurrent first queries share one build — the
// latch admits a single builder and parks the rest — and every caller gets
// the same tree. Run under -race this also proves the lock-free build
// publishes safely.
func TestLazyBuildSingleFlight(t *testing.T) {
	v := testvenue.Corridor3()
	reg := NewRegistry()
	builds := 0
	if err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		builds++ // single-flight means no mutex needed here; -race verifies
		time.Sleep(10 * time.Millisecond)
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	}); err != nil {
		t.Fatal(err)
	}
	e := reg.lookup("c3")

	const callers = 16
	trees := make([]*vip.Tree, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tree, err := e.index(context.Background())
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			trees[i] = tree
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times under concurrent first queries, want 1", builds)
	}
	for i, tr := range trees {
		if tr != trees[0] {
			t.Fatalf("caller %d got a different tree", i)
		}
	}
}

// TestLazyBuildWaiterCancellation: a caller parked behind someone else's
// build honours its own context instead of waiting out the build.
func TestLazyBuildWaiterCancellation(t *testing.T) {
	v := testvenue.Corridor3()
	reg := NewRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	if err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		close(started)
		<-release
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	}); err != nil {
		t.Fatal(err)
	}
	e := reg.lookup("c3")

	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		if _, err := e.index(context.Background()); err != nil {
			t.Errorf("builder: %v", err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := e.index(ctx)
		waiterErr <- err
	}()
	cancel()
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Error("cancelled waiter got a nil error before the build finished")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stayed parked behind the build")
	}
	close(release)
	<-builderDone
}
