package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/indoorspatial/ifls/internal/obs"
)

// DefaultMaxInFlight is the per-venue admission limit applied when
// Options.MaxInFlight is zero.
const DefaultMaxInFlight = 256

// DefaultMaxBodyBytes is the request-body size limit applied when
// Options.MaxBodyBytes is zero (a 10000-client query body is ~1 MB).
const DefaultMaxBodyBytes = 8 << 20

// Options configure a Server. The zero value serves with coalescing on,
// the default admission and body limits, and no metrics.
type Options struct {
	// MaxInFlight caps the queries admitted per venue at once; excess
	// requests are shed with 429/ErrOverloaded. Zero means
	// DefaultMaxInFlight; negative means unlimited.
	MaxInFlight int
	// DisableCoalescing turns off shared flights: every request runs its
	// own traversal under its own request context.
	DisableCoalescing bool
	// Metrics, when non-nil, receives every query's spans and aggregate
	// observation plus the serving gauges (coalesce hits/misses,
	// in-flight); it is also mounted at /debug/vars via the obs mux.
	Metrics *obs.Metrics
	// MaxBodyBytes caps the request body size (413 beyond it). Zero means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server is the multi-venue IFLS query service: an http.Handler over a
// Registry of warm indexes, with request coalescing, per-venue admission
// limits, and graceful drain. Create with New; all methods are safe for
// concurrent use.
type Server struct {
	reg  *Registry
	opts Options
	co   *coalescer
	mux  *http.ServeMux

	// life is the lifecycle context shared flights run under; stop cancels
	// it once the drain completes (or its deadline expires).
	life context.Context
	stop context.CancelFunc

	// drainMu orders admission against Shutdown: admit holds it (shared)
	// around the draining check and inflight.Add, Shutdown holds it
	// (exclusive) while flipping draining. That guarantees every Add
	// happens-before Wait observes a zero counter — no query can slip past
	// the drain check after Wait has started.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	semMu sync.Mutex
	sems  map[string]chan struct{}
}

// New builds a Server over a registry. The registry may keep gaining
// venues after the server starts.
func New(reg *Registry, opts Options) *Server {
	life, stop := context.WithCancel(context.Background())
	s := &Server{
		reg:  reg,
		opts: opts,
		co:   newCoalescer(),
		mux:  http.NewServeMux(),
		life: life,
		stop: stop,
		sems: map[string]chan struct{}{},
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/venues", s.handleVenues)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	// The standard debug surface (expvar JSON incl. the "ifls" metrics,
	// pprof) rides on the same mux; expose it to operators, not the open
	// internet (SERVING.md → Operations).
	s.mux.Handle("/debug/", obs.NewMux(opts.Metrics))
	return s
}

// Handler returns the server's HTTP surface, ready to mount on any
// listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's venue registry, for registering venues
// after construction.
func (s *Server) Registry() *Registry { return s.reg }

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: new queries are refused immediately (503,
// readiness flips), in-flight queries — including coalesced flights —
// run to completion and deliver complete answers, and only then does the
// lifecycle context cancel. If ctx expires first, Shutdown cancels the
// remaining flights (their clients see cancellation errors) and returns
// ctx's error. Callers serving over net/http should pair this with
// http.Server.Shutdown for the connection-level drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.stop()
	return err
}

// admit registers one query with the in-flight group unless the server is
// draining. On true the caller owns one inflight count and must Done it;
// on false the query must be refused. See drainMu for why the check and
// the Add are one atomic step.
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// venueSem returns the venue's admission semaphore, creating it at the
// configured capacity on first use.
func (s *Server) venueSem(venue string) chan struct{} {
	s.semMu.Lock()
	defer s.semMu.Unlock()
	sem, ok := s.sems[venue]
	if !ok {
		n := s.opts.MaxInFlight
		if n == 0 {
			n = DefaultMaxInFlight
		}
		if n < 0 {
			n = 1 << 20 // effectively unlimited
		}
		sem = make(chan struct{}, n)
		s.sems[venue] = sem
	}
	return sem
}

// maxBodyBytes returns the configured request-body cap.
func (s *Server) maxBodyBytes() int64 {
	if s.opts.MaxBodyBytes > 0 {
		return s.opts.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}
