package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/indoorspatial/ifls/internal/obs"
)

// DefaultMaxInFlight is the per-venue admission limit applied when
// Options.MaxInFlight is zero.
const DefaultMaxInFlight = 256

// DefaultMaxBodyBytes is the request-body size limit applied when
// Options.MaxBodyBytes is zero (a 10000-client query body is ~1 MB).
const DefaultMaxBodyBytes = 8 << 20

// DefaultAbandonGrace is how long an abandoned flight — one whose every
// participant's request context has died — keeps running before it is
// reaped, when Options.AbandonGrace is zero. Long enough for an identical
// retry to catch the flight mid-air, short enough that a scan of unique
// queries from disconnecting clients does not leak whole traversals.
const DefaultAbandonGrace = 100 * time.Millisecond

// DefaultRetryAfterSeconds is the Retry-After header value sent with 429
// overloaded and 503 draining responses when Options.RetryAfterSeconds is
// zero.
const DefaultRetryAfterSeconds = 1

// Hooks intercept serving-internal operations, primarily for fault
// injection (internal/chaos) and operational testing. All hooks may be
// called concurrently; a nil hook is skipped.
type Hooks struct {
	// BeforeExecute runs on the flight goroutine after admission and
	// venue resolution, immediately before the solver executes. It may
	// block (latency injection) — it should honor ctx — and a non-nil
	// return fails the query with that error, classified through the
	// faults taxonomy like any solver failure.
	BeforeExecute func(ctx context.Context, venue string) error
	// BeforeBuild runs before a lazy venue's index build is triggered by a
	// query. A non-nil return fails that request without invoking (or
	// caching anything in) the real build; blocking simulates a slow
	// build.
	BeforeBuild func(ctx context.Context, venue string) error
}

// Options configure a Server. The zero value serves with coalescing on,
// the default admission, body, and reap-grace limits, no query deadline,
// and no metrics.
type Options struct {
	// MaxInFlight caps the queries admitted per venue at once; excess
	// requests are shed with 429/ErrOverloaded. Zero means
	// DefaultMaxInFlight; negative means unlimited.
	MaxInFlight int
	// DisableCoalescing turns off shared flights: every request runs its
	// own traversal under its own request context.
	DisableCoalescing bool
	// Metrics, when non-nil, receives every query's spans and aggregate
	// observation plus the serving gauges (coalesce hits/misses,
	// in-flight); it is also mounted at /debug/vars via the obs mux.
	Metrics *obs.Metrics
	// MaxBodyBytes caps the request body size (413 beyond it). Zero means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// QueryTimeout bounds every query's wall time server-side; a query
	// that exceeds it terminates with 504/ErrDeadlineExceeded. A request
	// may shorten (never extend) its own deadline with the timeout_ms
	// body field. Zero means no server-side deadline. Coalesced flights
	// run until the MAX deadline across their participants.
	QueryTimeout time.Duration
	// AbandonGrace is how long a coalesced flight whose participants have
	// all departed keeps running before it is cancelled (reaped). Zero
	// means DefaultAbandonGrace; negative disables reaping (pre-reaping
	// behavior: abandoned flights run to completion).
	AbandonGrace time.Duration
	// RetryAfterSeconds is the Retry-After value sent with 429 overloaded
	// and 503 draining responses. Zero means DefaultRetryAfterSeconds.
	RetryAfterSeconds int
	// Hooks intercept serving internals for fault injection; see Hooks.
	Hooks Hooks
}

// Server is the multi-venue IFLS query service: an http.Handler over a
// Registry of warm indexes, with request coalescing, per-venue admission
// limits, and graceful drain. Create with New; all methods are safe for
// concurrent use.
type Server struct {
	reg  *Registry
	opts Options
	co   *coalescer
	mux  *http.ServeMux

	// life is the lifecycle context shared flights run under; stop cancels
	// it once the drain completes (or its deadline expires).
	life context.Context
	stop context.CancelFunc

	// drainMu orders admission against Shutdown: admit holds it (shared)
	// around the draining check and inflight.Add, Shutdown holds it
	// (exclusive) while flipping draining. That guarantees every Add
	// happens-before Wait observes a zero counter — no query can slip past
	// the drain check after Wait has started.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	semMu sync.Mutex
	sems  map[string]chan struct{}
}

// New builds a Server over a registry. The registry may keep gaining
// venues after the server starts.
func New(reg *Registry, opts Options) *Server {
	life, stop := context.WithCancel(context.Background())
	grace := opts.AbandonGrace
	if grace == 0 {
		grace = DefaultAbandonGrace
	}
	s := &Server{
		reg:  reg,
		opts: opts,
		mux:  http.NewServeMux(),
		life: life,
		stop: stop,
		sems: map[string]chan struct{}{},
	}
	var onReap func()
	if opts.Metrics != nil {
		onReap = opts.Metrics.FlightReaped
	}
	s.co = newCoalescer(life, grace, onReap)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/venues", s.handleVenues)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	// The standard debug surface (expvar JSON incl. the "ifls" metrics,
	// pprof) rides on the same mux; expose it to operators, not the open
	// internet (SERVING.md → Operations).
	s.mux.Handle("/debug/", obs.NewMux(opts.Metrics))
	return s
}

// Handler returns the server's HTTP surface, ready to mount on any
// listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's venue registry, for registering venues
// after construction.
func (s *Server) Registry() *Registry { return s.reg }

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: new queries are refused immediately (503,
// readiness flips), in-flight queries — including coalesced flights —
// run to completion and deliver complete answers, and only then does the
// lifecycle context cancel. If ctx expires first, Shutdown cancels the
// remaining flights (their clients see cancellation errors) and returns
// ctx's error. Callers serving over net/http should pair this with
// http.Server.Shutdown for the connection-level drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.stop()
	return err
}

// admit registers one query with the in-flight group unless the server is
// draining. On true the caller owns one inflight count and must Done it;
// on false the query must be refused. See drainMu for why the check and
// the Add are one atomic step.
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// venueSem returns the venue's admission semaphore, creating it at the
// configured capacity on first use.
func (s *Server) venueSem(venue string) chan struct{} {
	s.semMu.Lock()
	defer s.semMu.Unlock()
	sem, ok := s.sems[venue]
	if !ok {
		n := s.opts.MaxInFlight
		if n == 0 {
			n = DefaultMaxInFlight
		}
		if n < 0 {
			n = 1 << 20 // effectively unlimited
		}
		sem = make(chan struct{}, n)
		s.sems[venue] = sem
	}
	return sem
}

// maxBodyBytes returns the configured request-body cap.
func (s *Server) maxBodyBytes() int64 {
	if s.opts.MaxBodyBytes > 0 {
		return s.opts.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// retryAfterSeconds returns the configured Retry-After header value for
// shed (429) and draining (503) responses.
func (s *Server) retryAfterSeconds() int {
	if s.opts.RetryAfterSeconds > 0 {
		return s.opts.RetryAfterSeconds
	}
	return DefaultRetryAfterSeconds
}

// queryDeadline resolves the effective timeout for one request: the
// server-wide QueryTimeout, shortened — never extended — by the request's
// own timeout_ms override. Zero means unbounded.
func (s *Server) queryDeadline(overrideMS int64) time.Duration {
	d := s.opts.QueryTimeout
	if overrideMS > 0 {
		o := time.Duration(overrideMS) * time.Millisecond
		if d == 0 || o < d {
			d = o
		}
	}
	return d
}
