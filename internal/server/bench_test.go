package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/indoorspatial/ifls/internal/indoor"
	"github.com/indoorspatial/ifls/internal/testvenue"
	"github.com/indoorspatial/ifls/internal/vip"
)

// newGridServer builds a server over a multi-level grid venue large
// enough that a traversal costs real work, so coalescing has something to
// save, plus a representative query request against it. Both the
// coalesced and uncoalesced benchmark variants share this setup.
func newGridServer(b *testing.B, opts Options) (*Server, QueryRequest) {
	b.Helper()
	v := testvenue.Grid(testvenue.GridParams{Cols: 24, Levels: 4, InterRoomDoors: true})
	tree, err := vip.Build(v, vip.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := New(NewRegistry(), opts)
	if err := s.Registry().Add("grid", v, tree); err != nil {
		b.Fatal(err)
	}

	var rooms []int32
	for _, p := range v.Partitions {
		if p.Kind == indoor.Room {
			rooms = append(rooms, int32(p.ID))
		}
	}
	req := QueryRequest{Venue: "grid", Objective: "minmax"}
	for i := 0; i < 3; i++ {
		req.Existing = append(req.Existing, rooms[(i*13)%len(rooms)])
	}
	for i := 0; i < 24; i++ {
		req.Candidates = append(req.Candidates, rooms[(i*7+1)%len(rooms)])
	}
	for i := 0; i < 32; i++ {
		p := v.Partition(indoor.PartitionID(rooms[(i*5+2)%len(rooms)]))
		c := p.Rect.Center()
		req.Clients = append(req.Clients, ClientJSON{
			ID: int32(i), X: c.X, Y: c.Y, Level: c.Level, Partition: int32(p.ID),
		})
	}
	return s, req
}

// benchConcurrent fires b.N queries from k concurrent clients that all
// send the identical body — the coalescing sweet spot and the workload
// the serving layer's throughput criterion is measured on.
func benchConcurrent(b *testing.B, s *Server, req QueryRequest, k int) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/k + 1
	for c := 0; c < k; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					b.Errorf("status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkServeCoalesced8(b *testing.B) {
	s, req := newGridServer(b, Options{})
	benchConcurrent(b, s, req, 8)
}

func BenchmarkServeUncoalesced8(b *testing.B) {
	s, req := newGridServer(b, Options{DisableCoalescing: true})
	benchConcurrent(b, s, req, 8)
}

func BenchmarkServeCoalesced16(b *testing.B) {
	s, req := newGridServer(b, Options{})
	benchConcurrent(b, s, req, 16)
}

func BenchmarkServeUncoalesced16(b *testing.B) {
	s, req := newGridServer(b, Options{DisableCoalescing: true})
	benchConcurrent(b, s, req, 16)
}
