package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/indoorspatial/ifls/internal/faults"
	"github.com/indoorspatial/ifls/internal/indoor"
	"github.com/indoorspatial/ifls/internal/vip"
)

// Registry owns the warm per-venue state the server queries: each entry
// binds a venue to its VIP-tree index, built eagerly at registration (Add)
// or on first use (AddLazy — the cold-start-friendly path for large
// venues). Entries are never removed; a Registry grows monotonically for
// the life of the process. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// entry is one registered venue. The index is resolved at most once: Add
// stores it directly, AddLazy defers to build, whose one-shot outcome
// (tree or error) is cached under mu. A build in flight is marked by the
// building latch and runs outside mu, so state() — and through it
// Ready()/readyz — never waits behind a minutes-long index construction.
type entry struct {
	name  string
	venue *indoor.Venue

	mu       sync.Mutex
	build    func(context.Context) (*vip.Tree, error) // nil once resolved
	building chan struct{}                            // non-nil while one build attempt is in flight; closed when it ends
	tree     *vip.Tree
	err      error
}

// index returns the entry's tree, running the deferred build on first use.
// Exactly one goroutine runs the build — outside e.mu, so probes that only
// inspect state are never blocked behind it — while concurrent first
// queries wait on the building latch (or their own ctx). The outcome —
// success or failure — is cached and returned to every later caller.
// Cancellation is the one exception: a build aborted by ctx (e.g. a drain
// mid-build) is reported to that caller but not cached, so a later query
// becomes a fresh builder instead of inheriting a permanently failed venue;
// waiters on a cancelled build loop around and retry the same way.
func (e *entry) index(ctx context.Context) (*vip.Tree, error) {
	for {
		e.mu.Lock()
		if e.tree != nil || e.err != nil || e.build == nil {
			tree, err := e.tree, e.err
			e.mu.Unlock()
			return tree, err
		}
		if e.building != nil {
			done := e.building
			e.mu.Unlock()
			select {
			case <-done:
				continue // re-read the outcome; retry if the build was cancelled
			case <-ctx.Done():
				return nil, faults.Cancelled(ctx.Err())
			}
		}
		done := make(chan struct{})
		e.building = done
		build := e.build
		e.mu.Unlock()

		tree, err := build(ctx)

		cancelled := err != nil && (errors.Is(err, faults.ErrCancelled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		e.mu.Lock()
		e.building = nil
		if !cancelled {
			e.tree, e.err = tree, err
			e.build = nil
		}
		e.mu.Unlock()
		close(done)
		return tree, err
	}
}

// state reports whether the entry's index is built, without building it and
// without waiting on a build in flight (builds run outside e.mu).
func (e *entry) state() (ready bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tree != nil, e.err
}

// NewRegistry returns an empty venue registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]*entry{}} }

// Add registers a venue with a prebuilt index under name. Registering a
// taken name, a nil venue, or a nil tree fails with ErrInvalidOptions.
func (r *Registry) Add(name string, v *indoor.Venue, t *vip.Tree) error {
	if t == nil {
		return fmt.Errorf("%w: nil index for venue %q", faults.ErrInvalidOptions, name)
	}
	return r.add(&entry{name: name, venue: v, tree: t})
}

// AddLazy registers a venue whose index is built by build on the first
// query that needs it. The build runs at most once; a failure is cached
// and every query against the venue reports it, except cancellation,
// which leaves the build pending for a later query to retry.
func (r *Registry) AddLazy(name string, v *indoor.Venue, build func(context.Context) (*vip.Tree, error)) error {
	if build == nil {
		return fmt.Errorf("%w: nil index builder for venue %q", faults.ErrInvalidOptions, name)
	}
	return r.add(&entry{name: name, venue: v, build: build})
}

func (r *Registry) add(e *entry) error {
	if e.name == "" {
		return fmt.Errorf("%w: empty venue name", faults.ErrInvalidOptions)
	}
	if e.venue == nil {
		return fmt.Errorf("%w: nil venue %q", faults.ErrInvalidOptions, e.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("%w: venue %q already registered", faults.ErrInvalidOptions, e.name)
	}
	r.entries[e.name] = e
	return nil
}

// lookup returns the entry registered under name, or nil.
func (r *Registry) lookup(name string) *entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

// Names returns the registered venue names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ready reports whether the registry can serve: no venue's index build has
// failed. Lazy entries that have not been queried yet do not block
// readiness — they become ready (or failed) on first use.
func (r *Registry) Ready() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if _, err := e.state(); err != nil {
			return fmt.Errorf("venue %q: %w", e.name, err)
		}
	}
	return nil
}
