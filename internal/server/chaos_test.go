package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/indoorspatial/ifls/internal/chaos"
	"github.com/indoorspatial/ifls/internal/faults"
	"github.com/indoorspatial/ifls/internal/leakcheck"
	"github.com/indoorspatial/ifls/internal/obs"
	"github.com/indoorspatial/ifls/internal/testvenue"
	"github.com/indoorspatial/ifls/internal/vip"
)

// The chaos suite drives the server through a seeded fault injector —
// latency, injected errors, client hang-ups, short deadlines — and asserts
// the resilience contract: every request reaches a terminal status from
// the documented table, counters only grow, flights never leak goroutines,
// and the drain still completes. Run under -race these tests double as a
// synchronization audit of the deadline/reap machinery.

// terminalChaosStatuses are the statuses a request may legally end with
// under query-path chaos (no drain, no admission pressure beyond the
// configured limit).
var terminalChaosStatuses = map[int]bool{
	http.StatusOK:                  true,
	StatusClientClosedRequest:      true, // client hang-up
	http.StatusGatewayTimeout:      true, // deadline
	http.StatusInternalServerError: true, // injected fault (classified internal)
	http.StatusTooManyRequests:     true, // admission shed
}

// TestChaosQueryPath: a concurrent wave of queries — coalescing and
// distinct, bounded and unbounded, some abandoned mid-flight — against an
// injector mixing latency and errors. Every request must terminate with a
// documented status, the counter set must be monotone, and after a drain
// no goroutine may survive.
func TestChaosQueryPath(t *testing.T) {
	defer leakcheck.Check(t)()
	m := obs.NewMetrics()
	inj := chaos.New(chaos.Config{
		Seed:        20260808,
		LatencyProb: 0.4, MaxLatency: 15 * time.Millisecond,
		ErrorProb: 0.2,
	})
	s, _ := newTestServer(t, Options{
		Metrics:      m,
		QueryTimeout: 60 * time.Millisecond,
		AbandonGrace: 5 * time.Millisecond,
		Hooks:        Hooks{BeforeExecute: inj.BeforeExecute},
	})

	const (
		workers = 8
		perW    = 25
	)
	var wg sync.WaitGroup
	var badStatus atomic.Int64
	statuses := make([]int, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				req := c3Request()
				switch rng.Intn(4) {
				case 0: // distinct query per worker: no coalescing
					req.Clients[0].X = 5 + float64(w)/10
				case 1: // aggressive per-request deadline
					req.TimeoutMS = 1 + int64(rng.Intn(5))
				}
				abandon := rng.Intn(5) == 0
				ctx, cancel := context.WithCancel(context.Background())
				if abandon {
					time.AfterFunc(time.Duration(rng.Intn(8))*time.Millisecond, cancel)
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					cancel()
					return
				}
				r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body)).WithContext(ctx)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, r)
				cancel()
				statuses[w*perW+i] = rec.Code
				if !terminalChaosStatuses[rec.Code] {
					badStatus.Add(1)
					t.Errorf("request ended with undocumented status %d: %s", rec.Code, rec.Body.String())
				}
				if rec.Code != http.StatusOK {
					if decodeError(t, rec).Code == "" {
						t.Errorf("status %d carried no machine-readable code", rec.Code)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Counters: consistent with the wave, and monotone across a second
	// snapshot (nothing decays or resets).
	snap := m.Snapshot()
	total := int64(workers * perW)
	if snap.CoalesceHits+snap.CoalesceMisses > total {
		t.Errorf("hits+misses = %d, more than the %d requests sent", snap.CoalesceHits+snap.CoalesceMisses, total)
	}
	if snap.QueriesTimedOut < 0 || snap.FlightsReaped < 0 {
		t.Errorf("negative counters: %+v", snap)
	}
	later := m.Snapshot()
	if later.QueriesTimedOut < snap.QueriesTimedOut || later.FlightsReaped < snap.FlightsReaped ||
		later.CoalesceHits < snap.CoalesceHits || later.CoalesceMisses < snap.CoalesceMisses {
		t.Errorf("counters moved backwards: %+v then %+v", snap, later)
	}
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d after the wave, want 0", snap.InFlight)
	}
	if st := inj.Stats(); st.Errors == 0 && st.Latencies == 0 {
		t.Errorf("the injector never fired (stats %+v); the chaos run tested nothing", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos wave: %v", err)
	}
}

// TestChaosBuildFailureDoesNotPoison: an injected build failure fails the
// triggering request with a 5xx, but the venue stays buildable — the next
// query (with the fault gone) builds and answers.
func TestChaosBuildFailureDoesNotPoison(t *testing.T) {
	defer leakcheck.Check(t)()
	var inj atomic.Pointer[chaos.Injector]
	inj.Store(chaos.New(chaos.Config{Seed: 1, BuildFailProb: 1}))
	v := testvenue.Corridor3()
	reg := NewRegistry()
	err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{Hooks: Hooks{
		BeforeBuild: func(ctx context.Context, venue string) error {
			return inj.Load().BeforeBuild(ctx, venue)
		},
	}})

	w := post(t, s.Handler(), c3Request())
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("injected build failure status = %d, want 500: %s", w.Code, w.Body.String())
	}
	if ready, buildErr := reg.lookup("c3").state(); ready || buildErr != nil {
		t.Fatalf("injected failure poisoned the venue: ready=%v err=%v", ready, buildErr)
	}

	// Fault lifted: the same venue builds and serves.
	inj.Store(chaos.New(chaos.Config{}))
	w = post(t, s.Handler(), c3Request())
	if w.Code != http.StatusOK {
		t.Fatalf("post-chaos query status = %d, want 200: %s", w.Code, w.Body.String())
	}
	if ready, _ := reg.lookup("c3").state(); !ready {
		t.Error("venue not ready after a successful post-chaos build")
	}
}

// TestChaosSlowBuildHitsDeadline: a build delayed past the request's
// deadline terminates that request with 504 — the slow build surfaces as
// the latency failure it is, not a hang.
func TestChaosSlowBuildHitsDeadline(t *testing.T) {
	defer leakcheck.Check(t)()
	inj := chaos.New(chaos.Config{Seed: 1, SlowBuildProb: 1, MaxBuildDelay: time.Hour})
	v := testvenue.Corridor3()
	reg := NewRegistry()
	err := reg.AddLazy("c3", v, func(ctx context.Context) (*vip.Tree, error) {
		return vip.BuildContext(ctx, v, vip.DefaultOptions())
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{
		QueryTimeout: 20 * time.Millisecond,
		Hooks:        Hooks{BeforeBuild: inj.BeforeBuild},
	})
	w := post(t, s.Handler(), c3Request())
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow build status = %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w).Code; got != "deadline_exceeded" {
		t.Errorf("code = %q, want deadline_exceeded", got)
	}
}

// TestChaosCorruptRead: an index read through a bit-flipping transport is
// detected at load — classified ErrCorruptIndex, never a partial tree and
// never a panic.
func TestChaosCorruptRead(t *testing.T) {
	v := testvenue.Corridor3()
	tree := vip.MustBuild(v, vip.DefaultOptions())
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		r := chaos.CorruptReader(bytes.NewReader(buf.Bytes()), seed, 256)
		loaded, err := vip.Load(r, v)
		if loaded != nil {
			t.Fatalf("seed %d: Load returned a tree from a corrupted stream (err=%v)", seed, err)
		}
		if !errors.Is(err, faults.ErrCorruptIndex) {
			t.Errorf("seed %d: err = %v, want ErrCorruptIndex", seed, err)
		}
	}
}

// TestDrainLeakCheck: the pre-existing drain path, wrapped in the
// goroutine leak check — a drained server must unwind every flight
// watcher and reap timer.
func TestDrainLeakCheck(t *testing.T) {
	defer leakcheck.Check(t)()
	m := obs.NewMetrics()
	s, _ := newTestServer(t, Options{Metrics: m})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := c3Request()
			req.Clients[0].X = 5 + float64(i)/100 // unique: all miss
			if w := post(t, s.Handler(), req); w.Code != http.StatusOK {
				t.Errorf("query %d: status %d", i, w.Code)
			}
		}(i)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := post(t, s.Handler(), c3Request()); w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain query status = %d, want 503", w.Code)
	}
}
