// Package render draws venues and query results as SVG floor plans, one
// level per drawing: partitions as rectangles colored by kind, doors as
// dots, and optional overlays for clients, facilities, and the selected
// answer. The renderer exists for debugging venue generators and floor
// plans and for illustrating query results; it emits self-contained SVG
// using only the standard library.
package render

import (
	"fmt"
	"io"
	"strings"

	"github.com/indoorspatial/ifls/internal/core"
	"github.com/indoorspatial/ifls/internal/indoor"
)

// Style configures colors and scale. Zero values take defaults.
type Style struct {
	// Scale is pixels per meter (default 4).
	Scale float64
	// Margin is the border in meters (default 2).
	Margin                            float64
	RoomFill, CorridorFill, StairFill string
	Stroke                            string
	DoorFill                          string
	ClientFill                        string
	ExistingFill                      string
	CandidateFill                     string
	AnswerFill                        string
}

func (s *Style) defaults() {
	if s.Scale == 0 {
		s.Scale = 4
	}
	if s.Margin == 0 {
		s.Margin = 2
	}
	def := func(v *string, d string) {
		if *v == "" {
			*v = d
		}
	}
	def(&s.RoomFill, "#f3f0e8")
	def(&s.CorridorFill, "#ddd8cc")
	def(&s.StairFill, "#c9b8a0")
	def(&s.Stroke, "#5a5142")
	def(&s.DoorFill, "#8a7a5c")
	def(&s.ClientFill, "#4a7aa8")
	def(&s.ExistingFill, "#3d8a5f")
	def(&s.CandidateFill, "#c9a227")
	def(&s.AnswerFill, "#c14f3a")
}

// Overlay marks query entities on the drawing.
type Overlay struct {
	Clients    []core.Client
	Existing   []indoor.PartitionID
	Candidates []indoor.PartitionID
	Answer     indoor.PartitionID
}

// Level renders one level of the venue to w.
func Level(w io.Writer, v *indoor.Venue, level int, ov *Overlay, style Style) error {
	style.defaults()
	var b strings.Builder

	// Bounding box of this level (stairs straddle; include footprints).
	var minX, minY, maxX, maxY float64
	first := true
	for i := range v.Partitions {
		p := &v.Partitions[i]
		if !onLevel(p, level) {
			continue
		}
		r := p.Rect
		if first {
			minX, minY, maxX, maxY = r.Min.X, r.Min.Y, r.Max.X, r.Max.Y
			first = false
			continue
		}
		minX, minY = minF(minX, r.Min.X), minF(minY, r.Min.Y)
		maxX, maxY = maxF(maxX, r.Max.X), maxF(maxY, r.Max.Y)
	}
	if first {
		return fmt.Errorf("render: venue %q has no partitions on level %d", v.Name, level)
	}
	minX -= style.Margin
	minY -= style.Margin
	maxX += style.Margin
	maxY += style.Margin
	sc := style.Scale
	width := (maxX - minX) * sc
	height := (maxY - minY) * sc
	// SVG y grows downward; venue y grows upward. Flip.
	tx := func(x float64) float64 { return (x - minX) * sc }
	ty := func(y float64) float64 { return (maxY - y) * sc }

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<title>%s — level %d</title>`+"\n", escape(v.Name), level)

	answer := indoor.NoPartition
	exist := map[indoor.PartitionID]bool{}
	cand := map[indoor.PartitionID]bool{}
	if ov != nil {
		answer = ov.Answer
		for _, f := range ov.Existing {
			exist[f] = true
		}
		for _, f := range ov.Candidates {
			cand[f] = true
		}
	}

	for i := range v.Partitions {
		p := &v.Partitions[i]
		if !onLevel(p, level) {
			continue
		}
		fill := style.RoomFill
		switch p.Kind {
		case indoor.Corridor:
			fill = style.CorridorFill
		case indoor.Stair:
			fill = style.StairFill
		}
		switch {
		case p.ID == answer:
			fill = style.AnswerFill
		case exist[p.ID]:
			fill = style.ExistingFill
		case cand[p.ID]:
			fill = style.CandidateFill
		}
		r := p.Rect
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="1"/>`+"\n",
			tx(r.Min.X), ty(r.Max.Y), r.Width()*sc, r.Height()*sc, fill, style.Stroke)
		if p.Name != "" && p.Kind == indoor.Room && r.Width()*sc > 40 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="middle">%s</text>`+"\n",
				tx(r.Center().X), ty(r.Center().Y), style.Stroke, escape(p.Name))
		}
	}
	for i := range v.Doors {
		d := &v.Doors[i]
		if d.Loc.Level != level {
			continue
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
			tx(d.Loc.X), ty(d.Loc.Y), style.DoorFill)
	}
	if ov != nil {
		for _, c := range ov.Clients {
			if c.Loc.Level != level {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.8" fill="%s" fill-opacity="0.7"/>`+"\n",
				tx(c.Loc.X), ty(c.Loc.Y), style.ClientFill)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// onLevel reports whether partition p should be drawn on the given level:
// its own level, or — for stairs — any level one of its doors opens onto.
func onLevel(p *indoor.Partition, level int) bool {
	return p.Level() == level || (p.Kind == indoor.Stair && p.Level()+1 == level)
}

// AllLevels renders every level, invoking open to obtain one writer per
// level (e.g. one file per floor).
func AllLevels(v *indoor.Venue, ov *Overlay, style Style, open func(level int) (io.WriteCloser, error)) error {
	for lv := 0; lv < v.Levels; lv++ {
		w, err := open(lv)
		if err != nil {
			return err
		}
		if err := Level(w, v, lv, ov, style); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
