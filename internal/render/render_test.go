package render

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"github.com/indoorspatial/ifls/internal/core"
	"github.com/indoorspatial/ifls/internal/indoor"
	"github.com/indoorspatial/ifls/internal/testvenue"
	"github.com/indoorspatial/ifls/internal/venues"
)

func TestLevelProducesValidXML(t *testing.T) {
	v := testvenue.Default()
	var buf bytes.Buffer
	if err := Level(&buf, v, 0, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
}

func TestLevelDrawsEveryPartitionAndDoor(t *testing.T) {
	v := testvenue.Grid(testvenue.GridParams{Cols: 3, Levels: 2})
	var buf bytes.Buffer
	if err := Level(&buf, v, 0, nil, Style{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantRects := 0
	for i := range v.Partitions {
		if onLevel(&v.Partitions[i], 0) {
			wantRects++
		}
	}
	if got := strings.Count(out, "<rect"); got != wantRects {
		t.Fatalf("drew %d rects, want %d", got, wantRects)
	}
	wantDoors := 0
	for i := range v.Doors {
		if v.Doors[i].Loc.Level == 0 {
			wantDoors++
		}
	}
	if got := strings.Count(out, "<circle"); got != wantDoors {
		t.Fatalf("drew %d door circles, want %d", got, wantDoors)
	}
}

func TestLevelOverlay(t *testing.T) {
	v := testvenue.Corridor3()
	ov := &Overlay{
		Clients:    []core.Client{{ID: 0, Loc: v.Partition(1).Rect.Center(), Part: 1}},
		Existing:   []indoor.PartitionID{1},
		Candidates: []indoor.PartitionID{2, 3},
		Answer:     3,
	}
	style := Style{}
	var buf bytes.Buffer
	if err := Level(&buf, v, 0, ov, style); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	style.defaults()
	for name, color := range map[string]string{
		"answer":    style.AnswerFill,
		"existing":  style.ExistingFill,
		"candidate": style.CandidateFill,
		"client":    style.ClientFill,
	} {
		if !strings.Contains(out, color) {
			t.Errorf("overlay %s color %s not present", name, color)
		}
	}
}

func TestLevelRejectsEmptyLevel(t *testing.T) {
	v := testvenue.TwoRooms()
	var buf bytes.Buffer
	if err := Level(&buf, v, 7, nil, Style{}); err == nil {
		t.Fatal("expected error for nonexistent level")
	}
}

func TestAllLevels(t *testing.T) {
	v := testvenue.Grid(testvenue.GridParams{Cols: 2, Levels: 3})
	var opened []int
	err := AllLevels(v, nil, Style{}, func(level int) (io.WriteCloser, error) {
		opened = append(opened, level)
		return nopCloser{new(bytes.Buffer)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opened) != 3 {
		t.Fatalf("opened levels %v", opened)
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", got)
	}
}

func TestRenderRealVenue(t *testing.T) {
	v := venues.MelbourneCentral()
	var buf bytes.Buffer
	if err := Level(&buf, v, 3, nil, Style{Scale: 2}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatalf("suspiciously small drawing: %d bytes", buf.Len())
	}
}
