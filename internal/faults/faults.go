// Package faults is the error taxonomy of the serving layer: a small, fixed
// set of sentinel errors that every failure surfaced by the public API wraps.
// Callers branch on the class with errors.Is and read details from the
// wrapped message:
//
//	res, err := ix.SolveContext(ctx, q)
//	switch {
//	case errors.Is(err, faults.ErrCancelled):     // deadline or cancel; retry later
//	case errors.Is(err, faults.ErrInvalidQuery):  // reject the request, 4xx
//	case errors.Is(err, faults.ErrSolverPanic):   // contained crash; alert, 5xx
//	}
//
// The sentinels live in their own leaf package so that every layer (geom,
// indoor, workload, vip, core, batch, bench, and the public ifls package)
// can wrap them without import cycles. The root package re-exports them
// (ifls.ErrInvalidQuery = faults.ErrInvalidQuery, ...), so external callers
// never import this package directly.
//
// Cancellation errors additionally wrap the context's own error, so both
// errors.Is(err, faults.ErrCancelled) and errors.Is(err, context.Canceled)
// (or context.DeadlineExceeded) hold — callers that already branch on the
// standard context errors keep working.
package faults

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrInvalidQuery classifies malformed query input: unknown partition
	// IDs, NaN or cross-level client coordinates, clients outside their
	// declared partition, empty candidate sets, or a nil query.
	ErrInvalidQuery = errors.New("ifls: invalid query")

	// ErrMalformedVenue classifies venues that fail structural validation:
	// degenerate rectangles, dangling door references, disconnected
	// partitions, or an empty venue.
	ErrMalformedVenue = errors.New("ifls: malformed venue")

	// ErrCancelled classifies early returns forced by context cancellation
	// or deadline expiry. Construct instances with Cancelled so the
	// context's own error stays in the chain.
	ErrCancelled = errors.New("ifls: cancelled")

	// ErrInvalidWorkload classifies impossible workload-generation
	// requests: an unknown client distribution or a facility selection
	// larger than the venue's room count.
	ErrInvalidWorkload = errors.New("ifls: invalid workload")

	// ErrUnknownObjective classifies requests naming an objective or
	// solver the serving layer does not provide.
	ErrUnknownObjective = errors.New("ifls: unknown objective")

	// ErrInvalidOptions classifies unusable configuration, such as
	// VIP-tree fanouts below the structural minimum.
	ErrInvalidOptions = errors.New("ifls: invalid options")

	// ErrSolverPanic classifies a panic recovered at an API boundary: the
	// failure was contained to one query, and the wrapped message carries
	// the panic value for diagnosis.
	ErrSolverPanic = errors.New("ifls: solver panic")

	// ErrOverloaded classifies admission rejections: a venue's in-flight
	// query limit is reached and the serving layer sheds the request
	// instead of queueing it. Retry after backing off; the answer paths
	// were never entered, so the request had no side effects.
	ErrOverloaded = errors.New("ifls: overloaded")

	// ErrDeadlineExceeded classifies queries terminated by a server-side
	// deadline: the configured query timeout (or the request's own clamped
	// override) expired before the traversal converged. Distinct from
	// ErrCancelled — a deadline is the server enforcing its latency
	// budget, a cancellation is the client (or a drain) abandoning the
	// work. Construct instances with Deadline.
	ErrDeadlineExceeded = errors.New("ifls: deadline exceeded")

	// ErrCorruptIndex classifies persisted indexes that fail integrity
	// verification on load: a missing or mangled header, a checksum
	// mismatch, a payload that does not decode, or decoded structure that
	// fails deep validation (out-of-range references, malformed distance
	// matrices). A corrupt index is never partially loaded — Load returns
	// this error and no tree.
	ErrCorruptIndex = errors.New("ifls: corrupt index")
)

// Cancelled wraps a context error into the taxonomy. The result satisfies
// errors.Is for both ErrCancelled and the cause (context.Canceled or
// context.DeadlineExceeded). A nil cause defaults to context.Canceled.
func Cancelled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrCancelled, cause)
}

// Deadline wraps a cause into the deadline class. The result satisfies
// errors.Is for both ErrDeadlineExceeded and context.DeadlineExceeded, so
// callers branching on the standard context error keep working. A cause
// that does not itself carry context.DeadlineExceeded (including nil, and
// the context.Canceled produced when a deadline timer cancels a shared
// flight) is replaced by context.DeadlineExceeded: the class exists to
// state *why* the work stopped, and the why is the deadline.
func Deadline(cause error) error {
	if cause == nil || !errors.Is(cause, context.DeadlineExceeded) {
		cause = context.DeadlineExceeded
	}
	return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cause)
}

// Recovered converts a value recovered from a panic into an ErrSolverPanic
// error. When the panic value is itself an error it stays in the unwrap
// chain, so typed panics (e.g. geometry invariant violations) remain
// classifiable.
func Recovered(p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("%w: %w", ErrSolverPanic, err)
	}
	return fmt.Errorf("%w: %v", ErrSolverPanic, p)
}
