package ifls_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	ifls "github.com/indoorspatial/ifls"
)

// TestPublicPagedIndexFile exercises the paged on-disk index through the
// public API: SavePaged to a file, OpenIndexFile under a starved page cache,
// identical answers to the resident index, nonzero cache activity in the
// attached Metrics, clean Close. A monolithic (v2) file opened through the
// same entry point must behave identically, just fully materialized.
func TestPublicPagedIndexFile(t *testing.T) {
	v, rooms := buildOffice(t)
	ix, err := ifls.NewIndex(v)
	if err != nil {
		t.Fatal(err)
	}
	// The client sits in a non-candidate room so the solver must compute
	// real distances — a client inside a candidate short-circuits to zero
	// without ever touching a matrix page.
	q := &ifls.Query{
		Existing:   []ifls.PartitionID{rooms[0]},
		Candidates: []ifls.PartitionID{rooms[2], rooms[3]},
		Clients:    []ifls.Client{{ID: 0, Loc: ifls.Pt(15, 9, 0), Part: rooms[1]}},
	}
	want := ix.Solve(q)

	dir := t.TempDir()
	pagedPath := filepath.Join(dir, "office.vip")
	f, err := os.Create(pagedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SavePaged(f, ifls.PagedSaveOptions{PageSize: 64}); err != nil {
		t.Fatalf("SavePaged: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m := ifls.NewMetrics()
	paged, err := ifls.OpenIndexFile(pagedPath, v, ifls.PagedIndexOptions{CacheBytes: 128, Metrics: m})
	if err != nil {
		t.Fatalf("OpenIndexFile (paged): %v", err)
	}
	got := paged.Solve(q)
	if got.Found != want.Found || got.Answer != want.Answer || math.Abs(got.Objective-want.Objective) > 0 {
		t.Fatalf("paged index disagrees: %+v vs %+v", got, want)
	}
	if snap := m.Snapshot(); snap.PageCacheMisses == 0 || snap.PagesRead == 0 {
		t.Errorf("no page-cache activity recorded: %+v", snap)
	}
	if err := paged.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// LoadIndex accepts the same paged stream, fully materialized.
	data, err := os.ReadFile(pagedPath)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ifls.LoadIndex(bytes.NewReader(data), v)
	if err != nil {
		t.Fatalf("LoadIndex (paged stream): %v", err)
	}
	if got := mat.Solve(q); got.Answer != want.Answer {
		t.Fatalf("materialized paged index disagrees: %+v vs %+v", got, want)
	}

	// OpenIndexFile on a monolithic (v2) file: same answers, Close a no-op.
	monoPath := filepath.Join(dir, "office-v2.vip")
	mf, err := os.Create(monoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(mf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	mono, err := ifls.OpenIndexFile(monoPath, v, ifls.PagedIndexOptions{})
	if err != nil {
		t.Fatalf("OpenIndexFile (monolithic): %v", err)
	}
	if got := mono.Solve(q); got.Answer != want.Answer {
		t.Fatalf("monolithic index disagrees: %+v vs %+v", got, want)
	}
	if err := mono.Close(); err != nil {
		t.Fatalf("Close on resident index: %v", err)
	}
}
